"""Vectorized (NumPy) fast-path kernels for the chain pipeline.

The paper's preprocessing — prefix weights, the two-pointer prime-subpath
sweep, edge-membership intervals and the non-redundant-edge reduction —
is ``O(n)`` but *interpreted* ``O(n)`` in the reference implementation:
every task costs a Python bytecode loop iteration.  This module
re-expresses each step as array operations (``np.cumsum``,
``np.searchsorted``, ``np.minimum.reduceat``), cutting the constant
factor by one to two orders of magnitude on large chains while producing
**bit-identical** output to :mod:`repro.core.prime_subpaths`.

Float discipline
----------------

The reference decides criticality with the *subtraction form*
``prefix[b + 1] - prefix[a] > bound``.  ``np.searchsorted`` can only
evaluate the *addition form* ``prefix[b + 1] > prefix[a] + bound``,
which may disagree by one position when a window weight sits within an
ulp of the bound.  :func:`prime_windows` therefore seeds each endpoint
with ``searchsorted`` and then runs a vectorized fix-up that nudges
endpoints until the subtraction-form predicate holds exactly — same
comparisons as the pure-Python loop, so the two backends never diverge,
not even on adversarial ties (the property suite asserts this).

The public entry point is :func:`compute_prime_structure_numpy`, which
:func:`repro.core.prime_subpaths.compute_prime_structure` dispatches to
for ``backend="numpy"``.  The returned :class:`ArrayPrimeStructure`
stores arrays and materializes :class:`PrimeSubpath`/:class:`ReducedEdge`
rows lazily — Algorithm 4.1's sweep touches only the ``r`` reduced
edges, so the ``O(n)`` part of a query never builds a Python object.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised on minimal installs
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

from repro.core.feasibility import InfeasibleBoundError
from repro.graphs.chain import Chain
from repro.verify.contracts import complexity


def require_numpy() -> None:
    """Raise a helpful error when the NumPy fast path is unavailable."""
    if not HAVE_NUMPY:
        raise RuntimeError(
            "backend='numpy' requires NumPy; install it or use "
            "backend='python'"
        )


def prefix_array(chain: Chain) -> "np.ndarray":
    """The chain's prefix-weight array as a float64 ndarray (len n + 1).

    ``np.asarray`` over the chain's cached Python prefix list keeps the
    exact same floats (``itertools.accumulate`` and sequential summation
    agree bit-for-bit), so downstream comparisons match the reference.
    """
    require_numpy()
    return np.asarray(chain.prefix_weights(), dtype=np.float64)


def beta_array(chain: Chain) -> "np.ndarray":
    """Edge weights as a float64 ndarray (len n - 1)."""
    require_numpy()
    return np.asarray(chain.beta, dtype=np.float64)


def validate_bound_array(alpha_max: float, bound: float) -> None:
    """Array-path twin of :func:`repro.core.feasibility.validate_bound`
    taking a precomputed max vertex weight (the cache stores it)."""
    if bound <= 0:
        raise ValueError(f"bound K must be positive, got {bound:g}")
    if alpha_max > bound:
        raise InfeasibleBoundError(bound, alpha_max)


def prime_windows(
    prefix: "np.ndarray", bound: float
) -> Tuple["np.ndarray", "np.ndarray"]:
    """Vectorized two-pointer sweep: the prime subpaths under ``bound``.

    Returns ``(first_tasks, last_tasks)`` arrays, both strictly
    increasing.  For each left endpoint ``a`` the minimal critical right
    endpoint is seeded with ``np.searchsorted`` and corrected to the
    reference's subtraction-form predicate (see module docstring); a
    candidate survives exactly when no later candidate shares its right
    endpoint (the domination rule of ``find_prime_subpaths``).
    """
    n = prefix.shape[0] - 1
    if n <= 0:  # repro-mutate: equivalent=flip-compare -- at n == 0 the vector path below returns the same empty arrays
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    starts = prefix[:-1]
    # j approximates the first index with prefix[j] - prefix[a] > bound.
    j = np.searchsorted(prefix, starts + bound, side="right")  # repro-mutate: equivalent=swap-arith -- only a seed guess; the sweeps below re-derive the exact boundary
    a = np.arange(n, dtype=np.int64)
    # Floor at a + 2: a critical window spans at least two tasks, since
    # feasibility validated max(alpha) <= K exactly and a single-task
    # prefix difference can exceed K only by cancellation noise (the
    # reference sweep enforces the same floor).
    floor = a + 2
    np.clip(j, floor, n, out=j)  # repro-mutate: equivalent=shift-index -- an over-clipped seed is pulled straight back by the down sweep (prefix is monotone)
    # Fix-up to the exact subtraction-form predicate (monotone in j, so
    # each loop runs to a fixpoint; in practice 0-1 iterations).
    # REPRO019: the predicates reuse preallocated scratch buffers via
    # out= instead of chaining four fresh temporaries per pass.
    idx = np.empty(n, dtype=np.int64)
    gap = np.empty_like(starts)
    mask = np.empty(n, dtype=bool)
    inb = np.empty(n, dtype=bool)
    # REPRO017: the ufuncs themselves are module-attribute loads; bind
    # them once rather than twice per fix-up pass.
    np_take, np_subtract = np.take, np.subtract
    np_greater, np_and = np.greater, np.logical_and
    while True:
        # down: (j > floor) & (prefix[j - 1] - starts > bound)
        np_subtract(j, 1, out=idx)  # repro-mutate: equivalent=flip-compare,swap-arith -- a misfiring down sweep only undershoots; the up sweep re-derives the boundary with the exact predicate
        np_take(prefix, idx, out=gap)
        np_subtract(gap, starts, out=gap)
        np_greater(gap, bound, out=mask)
        np_greater(j, floor, out=inb)
        np_and(mask, inb, out=mask)
        if not mask.any():
            break
        j[mask] -= 1
    while True:
        # up: (j < n) & (prefix[j] - starts <= bound)
        np_take(prefix, j, out=gap)
        np_subtract(gap, starts, out=gap)
        np.less_equal(gap, bound, out=mask)
        np.less(j, n, out=inb)
        np_and(mask, inb, out=mask)
        if not mask.any():
            break
        j[mask] += 1
    exceeds = prefix[j] - starts > bound
    valid = exceeds & (j > a + 1)  # repro-mutate: equivalent=flip-compare -- the clip keeps j >= a + 2, so this guard holds either way
    a = a[valid]
    ends = j[valid] - 1  # last task of the minimal critical window
    if a.shape[0] == 0:
        return a, ends
    # Keep candidate a iff the next candidate ends strictly later.
    keep = np.empty(a.shape[0], dtype=bool)
    keep[:-1] = ends[1:] > ends[:-1]
    keep[-1] = True
    return a[keep], ends[keep]


def membership_intervals(
    first_edges: "np.ndarray", last_edges: "np.ndarray", num_edges: int
) -> Tuple["np.ndarray", "np.ndarray"]:
    """Per-edge prime-membership intervals ``(lo, hi)``, vectorized.

    ``lo[j]`` is the first prime whose last edge is ``>= j`` and
    ``hi[j]`` the last prime whose first edge is ``<= j`` — exactly
    ``edge_membership_intervals``, but via two ``searchsorted`` calls on
    the (strictly increasing) prime endpoint arrays.
    """
    edges = np.arange(num_edges, dtype=np.int64)
    lo = np.searchsorted(last_edges, edges, side="left")
    hi = np.searchsorted(first_edges, edges, side="right") - 1
    return lo, hi


def reduced_edge_arrays(
    beta: "np.ndarray",
    lo: "np.ndarray",
    hi: "np.ndarray",
    apply_reduction: bool = True,
) -> Tuple["np.ndarray", "np.ndarray", "np.ndarray", "np.ndarray"]:
    """The non-redundant edge reduction on arrays.

    Returns ``(index, weight, first_prime, last_prime)`` column arrays in
    increasing edge order: uncovered edges dropped, and (under
    ``apply_reduction``) each run of identical ``(lo, hi)`` membership
    collapsed to its minimum-weight edge, leftmost on ties — the same
    tie-break as ``reduce_edges``.
    """
    covered = lo <= hi
    idx = np.flatnonzero(covered)
    if idx.shape[0] == 0 or not apply_reduction:
        return idx, beta[idx], lo[idx], hi[idx]
    lo_c, hi_c = lo[idx], hi[idx]
    # Membership intervals are monotone, so equal (lo, hi) pairs form
    # contiguous runs among the covered edges.
    boundary = np.empty(idx.shape[0], dtype=bool)
    boundary[0] = True
    boundary[1:] = (lo_c[1:] != lo_c[:-1]) | (hi_c[1:] != hi_c[:-1])
    starts = np.flatnonzero(boundary)
    weights = beta[idx]
    group_min = np.minimum.reduceat(weights, starts)
    group_of = np.cumsum(boundary) - 1
    # Leftmost position achieving the group minimum (strict-< update in
    # the reference keeps the first minimum it sees).
    positions = np.arange(idx.shape[0], dtype=np.int64)
    at_min = weights == group_min[group_of]
    sentinel = idx.shape[0]
    first_min = np.minimum.reduceat(
        np.where(at_min, positions, sentinel), starts
    )
    sel = idx[first_min]
    return sel, beta[sel], lo_c[first_min], hi_c[first_min]


def reduced_class_arrays(
    beta: "np.ndarray",
    first_tasks: "np.ndarray",
    last_tasks: "np.ndarray",
    num_edges: int,
) -> Tuple["np.ndarray", "np.ndarray", "np.ndarray"]:
    """Weight-only twin of :func:`reduced_edge_arrays`, built directly
    from the prime windows.

    The per-edge membership interval ``(lo, hi)`` is a pair of step
    functions of the edge index: ``lo`` increments at ``last_edges + 1 ==
    last_tasks`` and ``hi`` at ``first_edges == first_tasks``.  Merging
    the ~``2p`` breakpoints therefore yields every maximal run of equal
    ``(lo, hi)`` — the reduction classes — without materializing the
    ``O(n)`` per-edge arrays at all.  Each class's weight is its member
    minimum (``np.minimum.reduceat``), bit-identical to the
    minimum-weight representative :func:`reduced_edge_arrays` selects,
    because ``min`` over the same float multiset is order-independent.

    Returns ``(weight, first_prime, last_prime)`` — no representative
    edge index, which is exactly what the weight-only TEMP_S sweep
    (:func:`sweep_min_weight`) consumes.  Cut extraction still goes
    through :func:`reduced_edge_arrays`.
    """
    if first_tasks.shape[0] == 0:
        empty_f = np.empty(0, dtype=np.float64)
        empty_i = np.empty(0, dtype=np.int64)
        return empty_f, empty_i, empty_i
    boundaries = np.concatenate((first_tasks, last_tasks))
    boundaries.sort()
    if boundaries[-1] >= num_edges:  # repro-mutate: equivalent=flip-compare -- a final last_tasks == num_edges breakpoint opens an empty uncovered segment that the cover mask drops anyway
        boundaries = boundaries[boundaries < num_edges]
    keep = np.empty(boundaries.shape[0], dtype=bool)
    keep[0] = True
    keep[1:] = boundaries[1:] != boundaries[:-1]
    seg_starts = boundaries[keep]
    # Membership at each segment start; constant within the segment.
    last_edges = last_tasks - 1
    lo = np.searchsorted(last_edges, seg_starts, side="left")
    hi = np.searchsorted(first_tasks, seg_starts, side="right") - 1
    covered = lo <= hi
    class_min = np.minimum.reduceat(beta, seg_starts)
    return class_min[covered], lo[covered], hi[covered]


class ArrayPrimeStructure:
    """Array-backed drop-in for :class:`repro.core.prime_subpaths.PrimeStructure`.

    Exposes the same interface (``p``, ``r``, ``primes``, ``edges``,
    ``q_values``, ``q``, ``mean_prime_length``) but stores columns as
    ndarrays; the :class:`PrimeSubpath`/:class:`ReducedEdge` row lists
    are materialized lazily and cached, so the hot path (Algorithm 4.1
    iterating ``edges``) builds only ``r`` objects and the Figure-2
    statistics never build any.
    """

    __slots__ = (
        "chain",
        "bound",
        "first_tasks",
        "last_tasks",
        "prime_weights",
        "edge_index",
        "edge_weight",
        "edge_first",
        "edge_last",
        "_primes",
        "_edges",
    )

    def __init__(
        self,
        chain: Chain,
        bound: float,
        first_tasks: "np.ndarray",
        last_tasks: "np.ndarray",
        prime_weights: "np.ndarray",
        edge_index: "np.ndarray",
        edge_weight: "np.ndarray",
        edge_first: "np.ndarray",
        edge_last: "np.ndarray",
    ) -> None:
        self.chain = chain
        self.bound = bound
        self.first_tasks = first_tasks
        self.last_tasks = last_tasks
        self.prime_weights = prime_weights
        self.edge_index = edge_index
        self.edge_weight = edge_weight
        self.edge_first = edge_first
        self.edge_last = edge_last
        self._primes: Optional[list] = None
        self._edges: Optional[list] = None

    @property
    def p(self) -> int:
        return int(self.first_tasks.shape[0])

    @property
    def r(self) -> int:
        return int(self.edge_index.shape[0])

    @property
    def primes(self) -> list:
        if self._primes is None:
            from repro.core.prime_subpaths import PrimeSubpath

            self._primes = [
                PrimeSubpath(int(a), int(b), float(w))
                for a, b, w in zip(
                    self.first_tasks, self.last_tasks, self.prime_weights
                )
            ]
        return self._primes

    @property
    def edges(self) -> list:
        if self._edges is None:
            from repro.core.prime_subpaths import ReducedEdge

            self._edges = [
                ReducedEdge(int(j), float(w), int(lo), int(hi))
                for j, w, lo, hi in zip(
                    self.edge_index,
                    self.edge_weight,
                    self.edge_first,
                    self.edge_last,
                )
            ]
        return self._edges

    @property
    def q_values(self) -> List[int]:
        return (self.edge_last - self.edge_first + 1).tolist()

    @property
    def q(self) -> float:
        if self.r == 0:
            return 0.0
        return float(np.mean(self.edge_last - self.edge_first + 1))

    def mean_prime_length(self) -> float:
        if self.p == 0:
            return 0.0
        return float(np.mean(self.last_tasks - self.first_tasks + 1))

    def min_prime_weight(self) -> float:
        """Smallest prime-subpath weight — the exclusive upper end of the
        bound interval over which this structure stays valid (see
        :mod:`repro.engine.cache`); ``inf`` when there are no primes."""
        if self.p == 0:
            return float("inf")
        return float(self.prime_weights.min())

    def __repr__(self) -> str:
        return (
            f"ArrayPrimeStructure(n={self.chain.num_tasks}, "
            f"K={self.bound:g}, p={self.p}, r={self.r})"
        )


@complexity("n")
def compute_prime_structure_numpy(
    chain: Chain,
    bound: float,
    apply_reduction: bool = True,
    prefix: Optional["np.ndarray"] = None,
    beta: Optional["np.ndarray"] = None,
    tracer: Optional["Tracer"] = None,
) -> ArrayPrimeStructure:
    """NumPy fast path for ``PrimeStructure.compute``.

    ``prefix``/``beta`` accept pre-converted arrays so the engine cache
    pays the list-to-ndarray conversion once per chain, not per bound.
    Output rows are element-for-element identical to the pure-Python
    reference.

    An enabled ``tracer`` wraps the whole dispatch in a
    ``kernel_dispatch`` span (one per vectorized structure build —
    these are the engine's "kernel dispatch count") with ``p``/``r``
    attached; disabled tracing costs one branch.
    """
    if tracer is not None and tracer.enabled:
        with tracer.span(
            "kernel_dispatch", kernel="prime_structure", n=chain.num_tasks
        ) as span:
            structure = compute_prime_structure_numpy(
                chain, bound, apply_reduction=apply_reduction,
                prefix=prefix, beta=beta,
            )
            span.set("p", structure.p)
            span.set("r", structure.r)
        return structure
    require_numpy()
    if prefix is None:
        prefix = prefix_array(chain)
    if beta is None:
        beta = beta_array(chain)
    # Take the max from the authoritative per-task weights: differencing
    # the prefix array can be off by an ulp, which must not change
    # feasibility verdicts relative to the reference.
    validate_bound_array(chain.max_vertex_weight(), bound)
    first_tasks, last_tasks = prime_windows(prefix, bound)
    prime_weights = prefix[last_tasks + 1] - prefix[first_tasks]
    lo, hi = membership_intervals(
        first_tasks, last_tasks - 1, chain.num_edges
    )
    edge_index, edge_weight, edge_first, edge_last = reduced_edge_arrays(
        beta, lo, hi, apply_reduction=apply_reduction
    )
    return ArrayPrimeStructure(
        chain,
        bound,
        first_tasks,
        last_tasks,
        prime_weights,
        edge_index,
        edge_weight,
        edge_first,
        edge_last,
    )


@complexity("n + p log q")
def sweep_min_cut(
    edge_index: List[int],
    edge_weight: List[float],
    edge_first: List[int],
    edge_last: List[int],
) -> Tuple[List[int], float]:
    """Algorithm 4.1's TEMP_S sweep over flat columns — the fast path.

    Semantically identical to driving :class:`repro.core.temp_s.TempSQueue`
    with ``search="binary"`` (same float expressions, same comparisons,
    same tie handling), but engineered for the interpreter: rows live in
    parallel Python lists (no per-row objects), the W-column binary
    search is :func:`bisect.bisect_left` (C speed), and solutions are an
    append-only arena of ``(edge, prev, cumulative weight)`` columns
    instead of :class:`SolutionNode` allocations.  Returns the optimal
    cut's sorted edge indices and its weight.
    """
    # Solution arena: id -> (chain edge, previous solution id or -1,
    # cumulative cut weight).  W_j of the recurrence equals the new
    # node's cumulative weight, exactly as in the reference.
    sol_edge: List[int] = []
    sol_prev: List[int] = []
    sol_w: List[float] = []
    # TEMP_S rows, TOP..BOTTOM, as parallel columns.
    row_lo: List[int] = []
    row_hi: List[int] = []
    row_w: List[float] = []
    row_sol: List[int] = []
    # REPRO017: bound methods once — the same local-binding idiom
    # sweep_min_weight already uses for its row columns.
    push_lo = row_lo.append
    push_hi = row_hi.append
    push_w = row_w.append
    push_sol = row_sol.append
    push_edge = sol_edge.append
    push_prev = sol_prev.append
    push_sw = sol_w.append
    top = 0
    gamma = -1  # solution id of S_{first_prime - 1}; -1 = empty solution
    for j, bw, fp, lp in zip(edge_index, edge_weight, edge_first, edge_last):
        # Retire primes completed before this edge (pop_completed).
        size = len(row_lo)
        while top < size:
            if row_lo[top] >= fp:
                break
            gamma = row_sol[top]
            if row_hi[top] < fp:
                top += 1  # entire row retired
            else:
                row_lo[top] = fp  # trim and stop
                break
        if fp > 0 and gamma >= 0:  # repro-mutate: equivalent=flip-compare -- first primes are nondecreasing, so gamma is still -1 whenever fp == 0
            wv = bw + sol_w[gamma]
            prev = gamma
        else:
            wv = bw
            prev = -1
        sid = len(sol_edge)
        push_edge(j)
        push_prev(prev)
        push_sw(wv)
        # First row (from TOP) whose W >= wv; replace it and everything
        # below with one row carrying wv, then open new subpaths.
        size = len(row_w)
        split = bisect_left(row_w, wv, top, size)
        if split < size:
            bottom_hi = row_hi[-1]
            row_hi[split] = bottom_hi if bottom_hi > lp else lp  # repro-mutate: equivalent=flip-compare -- max() tie: both branches store the same hi
            row_w[split] = wv
            row_sol[split] = sid
            if split + 1 < size:  # repro-mutate: equivalent=flip-compare -- deleting the empty slice [size:] is a no-op
                del row_lo[split + 1 :]
                del row_hi[split + 1 :]
                del row_w[split + 1 :]
                del row_sol[split + 1 :]
        elif top >= size:
            # Queue drained: anchor a fresh row at this edge's range.
            push_lo(fp)
            push_hi(lp)
            push_w(wv)
            push_sol(sid)
        elif lp > row_hi[-1]:
            push_lo(row_hi[-1] + 1)
            push_hi(lp)
            push_w(wv)
            push_sol(sid)
        # else: wv exceeds every open minimum and opens nothing — no-op.
    if top >= len(row_lo):
        return [], 0.0
    # Solution S_p sits in the BOTTOM row; materialize its edge chain.
    final = row_sol[-1]
    weight = row_w[-1]
    cut: List[int] = []
    while final >= 0:
        cut.append(sol_edge[final])
        final = sol_prev[final]
    cut.reverse()
    return cut, weight


@complexity("n + p log q")
def sweep_min_weight(
    edge_weight: List[float],
    edge_first: List[int],
    edge_last: List[int],
    head_edges: int,
) -> float:
    """Weight of the optimal cut — :func:`sweep_min_cut` minus the cut.

    The multi-query sweeps in :mod:`repro.engine.plan` only need the
    bandwidth per bound (cuts are reconstructed on demand), and dropping
    the solution arena plus per-row solution ids makes this the hottest
    loop's cheapest faithful form: every float expression, comparison
    and tie-break below mirrors :func:`sweep_min_cut` term for term, so
    the returned weight is bit-identical to the reference's.

    ``head_edges`` is the count of leading edges whose first prime is 0
    (``edge_first`` is nondecreasing, so they form a prefix; callers
    compute it with one ``searchsorted``).  For those edges the retire
    loop cannot run (no row starts below prime 0) and the recurrence has
    no predecessor term, so the loop body skips both — same arithmetic,
    fewer branches.
    """
    row_lo: List[int] = []
    row_hi: List[int] = []
    row_w: List[float] = []
    push_lo = row_lo.append
    push_hi = row_hi.append
    push_w = row_w.append
    top = 0
    size = 0
    gamma_w = 0.0  # cumulative weight of S_{first_prime - 1}; 0 = empty
    last_w = 0.0  # row_w[-1] / row_hi[-1], tracked to keep the hot
    last_hi = -1  # branches off the list objects
    t = 0
    for bw, fp, lp in zip(edge_weight, edge_first, edge_last):
        if t < head_edges:
            wv = bw  # fp == 0: nothing to retire, no predecessor
        else:
            while top < size:
                if row_lo[top] >= fp:
                    break
                gamma_w = row_w[top]
                if row_hi[top] < fp:
                    top += 1  # entire row retired
                else:
                    row_lo[top] = fp  # trim and stop
                    break
            wv = bw + gamma_w
        t += 1
        # First row (from TOP) whose W >= wv; replace it and everything
        # below with one row carrying wv, then open new subpaths.  The
        # bottom row holds the column maximum, so ``last_w < wv`` means
        # the binary search would land past the end — skip it.
        if (
            top < size
            and last_w >= wv  # repro-mutate: equivalent=flip-compare -- a last_w == wv tie replaces the bottom row with its own W; routing it through the extend branch opens a second row at the same W, which retire and replace read identically
        ):
            split = size - 1
            if split > top and row_w[split - 1] >= wv:  # repro-mutate: equivalent=flip-compare -- at split == top the bisect over an empty range returns the same split, and splitting a run of equal-W rows is weight-inert (retire and replace read only W)
                # Rare: wv displaces more than the bottom row.
                split = bisect_left(row_w, wv, top, split)
                del row_lo[split + 1 :]
                del row_hi[split + 1 :]
                del row_w[split + 1 :]
                size = split + 1
            if last_hi < lp:  # repro-mutate: equivalent=flip-compare -- max() tie: both branches store the same hi
                last_hi = lp
            row_hi[split] = last_hi
            row_w[split] = wv
            last_w = wv
        elif top >= size:
            # Queue drained: anchor a fresh row at this edge's range.
            push_lo(fp)
            push_hi(lp)
            push_w(wv)
            size += 1
            last_w = wv
            last_hi = lp
        elif lp > last_hi:
            push_lo(last_hi + 1)
            push_hi(lp)
            push_w(wv)
            size += 1
            last_w = wv
            last_hi = lp
        # else: wv exceeds every open minimum and opens nothing — no-op.
    if top >= size:  # repro-mutate: equivalent=flip-compare -- every loop iteration leaves a live row, so top == size only on empty input, where last_w is still 0.0
        return 0.0
    return last_w


@complexity("n + p log q")
def bandwidth_sweep(structure: Any) -> Tuple[List[int], float]:
    """Run the fast sweep over a prime structure (array-backed or not).

    Accepts either an :class:`ArrayPrimeStructure` (columns converted
    via ``.tolist()`` — no per-edge objects ever built) or the reference
    :class:`~repro.core.prime_subpaths.PrimeStructure`.
    """
    if isinstance(structure, ArrayPrimeStructure):
        return sweep_min_cut(
            structure.edge_index.tolist(),
            structure.edge_weight.tolist(),
            structure.edge_first.tolist(),
            structure.edge_last.tolist(),
        )
    edges = structure.edges
    return sweep_min_cut(
        [e.index for e in edges],
        [e.weight for e in edges],
        [e.first_prime for e in edges],
        [e.last_prime for e in edges],
    )


def feasible_components(
    prefix: "np.ndarray", cut_indices: Sequence[int], bound: float
) -> bool:
    """Vectorized feasibility check: every block induced by the cut
    weighs at most ``bound`` (subtraction-form comparisons, as always)."""
    require_numpy()
    n = prefix.shape[0] - 1
    cut = np.asarray(sorted(set(int(i) for i in cut_indices)), dtype=np.int64)
    los = np.concatenate(([0], cut + 1))
    his = np.concatenate((cut, [n - 1]))
    return bool(np.all(prefix[his + 1] - prefix[los] <= bound))
