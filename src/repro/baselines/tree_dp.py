"""Exact pseudo-polynomial DP oracle for processor minimization on trees.

State: for each vertex ``v`` (processing the rooted tree bottom-up),
``dp[v]`` maps *the weight of the component currently containing v* to
the minimum number of cut edges inside v's subtree achieving it.  A
child edge is either kept (component weights add; must stay within the
bound) or cut (child contributes its own best count plus one).

Distinct reachable component weights can grow combinatorially, so this
oracle is intended for the small/integer-weight instances the property
tests generate; it refuses anything that would explode.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.feasibility import validate_bound
from repro.graphs.tree import Tree
from repro.verify.contracts import complexity

_MAX_STATES = 200_000


@complexity("n s^2")
def min_cuts_exact(tree: Tree, bound: float, root: int = 0) -> int:
    """Exact minimum number of cut edges for a load-bounded tree partition."""
    validate_bound(tree.vertex_weights, bound)
    order, parent = tree.post_order(root)
    children: List[List[int]] = [[] for _ in range(tree.num_vertices)]
    for v in order:
        if parent[v] >= 0:
            children[parent[v]].append(v)

    dp: List[Dict[float, int]] = [dict() for _ in range(tree.num_vertices)]
    total_states = 0
    for v in order:
        states: Dict[float, int] = {tree.vertex_weight(v): 0}
        for c in children[v]:
            child_states = dp[c]
            cut_cost = min(child_states.values()) + 1
            merged: Dict[float, int] = {}
            for weight, cuts in states.items():
                # Option 1: cut the edge (v, c).
                candidate = cuts + cut_cost
                if weight not in merged or candidate < merged[weight]:
                    merged[weight] = candidate
                # Option 2: keep the edge; component weights add.
                for child_weight, child_cuts in child_states.items():
                    combined = weight + child_weight
                    if combined > bound:
                        continue
                    candidate = cuts + child_cuts
                    if combined not in merged or candidate < merged[combined]:
                        merged[combined] = candidate
            states = merged
            dp[c] = {}  # release
            total_states += len(states)
            if total_states > _MAX_STATES:
                raise ValueError(
                    "instance too large for the exact tree DP oracle"
                )
        dp[v] = states
    return min(dp[root].values())


def min_components_exact(tree: Tree, bound: float) -> int:
    """Exact minimum number of components (= min cuts + 1)."""
    return min_cuts_exact(tree, bound) + 1
