"""Heterogeneous chains-on-chains partitioning.

Bokhari [5] "considered the problem for both homogeneous and
non-homogeneous processors"; this module supplies the non-homogeneous
variant for the comparison family: partition a chain into at most ``m``
contiguous blocks, assign block ``j`` to processor ``j`` *in order*
(the linear-array constraint), and minimize the bottleneck *time*
``max_j (block weight_j / speed_j)``.

Two exact solvers with identical optima:

- :func:`ccp_hetero_dp` — layered DP, ``O(m n^2)``;
- :func:`ccp_hetero_probe` — bisection on the bottleneck time with a
  greedy feasibility probe (fill each processor up to ``B * speed``),
  converging to float precision.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.baselines.bokhari import CCPResult
from repro.graphs.chain import Chain
from repro.verify.contracts import complexity


def _validate(chain: Chain, speeds: Sequence[float]) -> List[float]:
    speeds = [float(s) for s in speeds]
    if not speeds:
        raise ValueError("need at least one processor speed")
    if any(s <= 0 for s in speeds):
        raise ValueError("speeds must be positive")
    return speeds


@complexity("m n^2")
def ccp_hetero_dp(chain: Chain, speeds: Sequence[float]) -> CCPResult:
    """Exact heterogeneous chains-on-chains by layered DP.

    ``speeds[j]`` is the speed of the processor receiving block ``j``.
    Blocks may be empty (a slow processor can be skipped), matching
    Bokhari's linear-array semantics where unused processors idle.
    """
    speeds = _validate(chain, speeds)
    n = chain.num_tasks
    m = len(speeds)
    prefix = chain.prefix_weights()
    INF = float("inf")

    # dp[j] = min bottleneck time covering tasks 0..j-1 with processors
    # 0..k; empty blocks allowed, so dp[0] stays 0 at every layer.
    prev = [INF] * (n + 1)
    prev[0] = 0.0
    for j in range(1, n + 1):
        prev[j] = (prefix[j] - prefix[0]) / speeds[0]
    parents: List[List[int]] = [[0] * (n + 1)]
    for k in range(1, m):
        current = [INF] * (n + 1)
        parent = [0] * (n + 1)
        current[0] = 0.0
        speed = speeds[k]
        for j in range(1, n + 1):
            best, best_i = INF, 0
            for i in range(j + 1):
                if prev[i] == INF:
                    continue
                block = (prefix[j] - prefix[i]) / speed if i < j else 0.0
                candidate = max(prev[i], block)
                if candidate < best:
                    best, best_i = candidate, i
            current[j] = best
            parent[j] = best_i
        parents.append(parent)
        prev = current

    # Reconstruct.
    cuts: List[int] = []
    j = n
    for k in range(m - 1, 0, -1):
        i = parents[k][j]
        if 0 < i < n and i != j:
            cuts.append(i - 1)
        j = i
    cuts = sorted(set(cuts))
    bottleneck = _realized_bottleneck(chain, speeds, cuts)
    return CCPResult(tuple(cuts), len(cuts) + 1, bottleneck)


def _realized_bottleneck(
    chain: Chain, speeds: Sequence[float], cuts: Sequence[int]
) -> float:
    """Bottleneck time of a cut under the best in-order block->processor
    alignment (skipping processors greedily never helps once blocks are
    fixed in order and speeds are arbitrary, so align block j with the
    j-th *fastest-feasible* prefix processor via DP on small sizes)."""
    blocks = chain.cut_components(cuts)
    weights = [chain.segment_weight(lo, hi) for lo, hi in blocks]
    m = len(speeds)
    k = len(weights)
    if k > m:
        return float("inf")
    INF = float("inf")
    # dp[b] = min bottleneck placing first b blocks on first p procs.
    dp = [0.0] + [INF] * k
    for p in range(m):
        new = list(dp)
        for b in range(1, k + 1):
            if dp[b - 1] < INF:
                candidate = max(dp[b - 1], weights[b - 1] / speeds[p])
                if candidate < new[b]:
                    new[b] = candidate
        dp = new
    return dp[k]


@complexity("n log u")
def ccp_hetero_probe(
    chain: Chain, speeds: Sequence[float], tolerance: float = 1e-12
) -> CCPResult:
    """Bisection + greedy probe for the heterogeneous problem.

    A candidate time ``B`` is feasible iff sweeping tasks left to right
    and letting processor ``j`` absorb up to ``B * speeds[j]`` weight
    covers the chain within ``m`` processors (the greedy is exchange-
    optimal because blocks are contiguous and in processor order).
    """
    speeds = _validate(chain, speeds)

    def probe(candidate: float) -> Optional[List[int]]:
        cuts: List[int] = []
        proc = 0
        load = 0.0
        capacity = candidate * speeds[0]
        for i, weight in enumerate(chain.alpha):
            while load + weight > capacity:
                proc += 1
                if proc >= len(speeds):
                    return None
                if i > 0 and (not cuts or cuts[-1] != i - 1):
                    cuts.append(i - 1)
                load = 0.0
                capacity = candidate * speeds[proc]
            load += weight
        return cuts

    total = chain.total_weight()
    lo = 0.0
    hi = total / min(speeds)
    result: Optional[List[int]] = probe(hi)
    assert result is not None
    for _ in range(200):
        if hi - lo <= tolerance * max(1.0, hi):
            break
        mid = 0.5 * (lo + hi)
        attempt = probe(mid)
        if attempt is not None:
            hi = mid
            result = attempt
        else:
            lo = mid
    assert result is not None
    bottleneck = _realized_bottleneck(chain, speeds, result)
    return CCPResult(tuple(sorted(set(result))), len(set(result)) + 1, bottleneck)
