"""Star-graph bandwidth minimization via 0-1 knapsack — Theorem 1.

Theorem 1 of the paper proves the load-bounded bandwidth-minimization
problem NP-complete already on star graphs, by reduction to 0-1
knapsack: keep leaf ``i`` with the centre iff item ``i`` goes into the
knapsack — leaf weights are item weights (capacity = the load bound),
edge weights are item profits (cut weight = total profit minus the
profit kept).

This module implements

- :func:`knapsack_01` — an exact pseudo-polynomial DP (integer weights);
- :func:`star_bandwidth_min` — the exact star solver built on it;
- the two directions of the Theorem-1 reduction, so the tests can
  exercise the equivalence exactly as the proof states it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

from repro.core.feasibility import validate_bound
from repro.graphs.task_graph import Edge
from repro.graphs.tree import Tree
from repro.verify.contracts import complexity


@dataclass(frozen=True)
class KnapsackSolution:
    """Chosen item indices and their total profit/weight."""

    items: Tuple[int, ...]
    profit: float
    weight: float


@complexity("n c")
def knapsack_01(
    weights: Sequence[float], profits: Sequence[float], capacity: float
) -> KnapsackSolution:
    """Exact 0-1 knapsack via DP over integer weights.

    Weights and the capacity must be integral (``ValueError`` otherwise);
    profits may be arbitrary non-negative reals.
    """
    if len(weights) != len(profits):
        raise ValueError("weights and profits must align")
    int_weights: List[int] = []
    for w in weights:
        if w != int(w) or w < 0:
            raise ValueError(f"knapsack DP needs non-negative integer weights, got {w}")
        int_weights.append(int(w))
    if capacity != int(capacity) or capacity < 0:
        raise ValueError(f"capacity must be a non-negative integer, got {capacity}")
    cap = int(capacity)

    NEG = float("-inf")
    best: List[float] = [0.0] + [NEG] * cap
    choice: List[List[bool]] = []
    for idx, (w, p) in enumerate(zip(int_weights, profits)):
        taken = [False] * (cap + 1)
        if w <= cap:
            for c in range(cap, w - 1, -1):
                candidate = best[c - w] + p
                if best[c - w] > NEG and candidate > best[c]:
                    best[c] = candidate
                    taken[c] = True
        choice.append(taken)

    best_cap = max(range(cap + 1), key=lambda c: best[c])
    items: List[int] = []
    c = best_cap
    for idx in range(len(int_weights) - 1, -1, -1):
        if choice[idx][c]:
            items.append(idx)
            c -= int_weights[idx]
    items.reverse()
    total_w = float(sum(int_weights[i] for i in items))
    total_p = float(sum(profits[i] for i in items))
    return KnapsackSolution(tuple(items), total_p, total_w)


def _star_parts(star: Tree) -> Tuple[int, List[int]]:
    """Return (centre, leaves) of a star; ValueError if not a star."""
    if not star.is_star():
        raise ValueError("graph is not a star")
    if star.num_vertices == 1:
        return 0, []
    center = max(range(star.num_vertices), key=star.degree)
    leaves = [v for v in range(star.num_vertices) if v != center]
    return center, leaves


def star_bandwidth_min(star: Tree, bound: float) -> Tuple[Set[Edge], float]:
    """Exact minimum-bandwidth load-bounded cut of a star graph.

    Requires integer leaf weights (the knapsack DP's condition).  Leaves
    *kept* with the centre are the knapsack items; capacity is the bound
    minus the centre weight.  Returns ``(cut_edges, cut_weight)``.
    """
    validate_bound(star.vertex_weights, bound)
    center, leaves = _star_parts(star)
    capacity = bound - star.vertex_weight(center)
    weights = [star.vertex_weight(v) for v in leaves]
    profits = [star.edge_weight(center, v) for v in leaves]
    solution = knapsack_01(weights, profits, float(int(capacity)))
    kept = {leaves[i] for i in solution.items}
    cut = {
        (center, v) if center < v else (v, center)
        for v in leaves
        if v not in kept
    }
    cut_weight = sum(profits) - solution.profit
    return cut, cut_weight


# ----------------------------------------------------------------------
# The Theorem-1 reduction, in both directions
# ----------------------------------------------------------------------
def knapsack_to_star(
    weights: Sequence[float], profits: Sequence[float]
) -> Tree:
    """Construct the Theorem-1 star: centre of weight 0, leaf ``i`` of
    weight ``w_i``, edge ``(centre, i)`` of weight ``p_i``."""
    return Tree.star(0.0, list(weights), list(profits))


def cut_to_knapsack_items(star: Tree, cut: Set[Edge]) -> Set[int]:
    """The knapsack interpretation of a star cut: items kept = leaves
    whose edge is *not* cut (the set ``I`` of the proof)."""
    center, leaves = _star_parts(star)
    cut_canonical = {(min(u, v), max(u, v)) for u, v in cut}
    return {
        i
        for i, v in enumerate(leaves)
        if ((min(center, v), max(center, v)) not in cut_canonical)
    }


def knapsack_items_to_cut(star: Tree, items: Set[int]) -> Set[Edge]:
    """The reverse direction: cut exactly the edges of leaves not chosen."""
    center, leaves = _star_parts(star)
    return {
        (min(center, v), max(center, v))
        for i, v in enumerate(leaves)
        if i not in items
    }
