"""Baselines and oracles the paper compares against (or that we use to
verify the paper's algorithms).

Chain bandwidth minimization (same problem as Algorithm 4.1):

- :func:`~repro.baselines.exact_dp.bandwidth_min_dp` — ``O(n^2)`` DP
  oracle;
- :func:`~repro.baselines.nicol.bandwidth_min_nlogn` — Nicol &
  O'Hallaron-style ``O(n log n)`` baseline [11];
- :func:`~repro.baselines.sliding_window.bandwidth_min_deque` — modern
  ``O(n)`` monotone deque;
- :mod:`~repro.baselines.brute_force` — exhaustive enumeration.

Tree processor minimization:

- :func:`~repro.baselines.kundu_misra.processor_min_bottom_up` —
  independent bottom-up greedy;
- :func:`~repro.baselines.tree_dp.min_cuts_exact` — exact DP oracle.

Chains-on-chains (the prior-work family, references [5] and [8]):

- :mod:`~repro.baselines.bokhari`, :mod:`~repro.baselines.hansen_lih`.

NP-complete star case (Theorem 1): :mod:`~repro.baselines.star_knapsack`.

Naive comparison partitions: :mod:`~repro.baselines.greedy`.
"""

from repro.baselines.bokhari import CCPResult, bokhari_pipelined_dp, ccp_dp, ccp_probe
from repro.baselines.brute_force import (
    BruteForceOptimum,
    chain_min_bandwidth,
    chain_min_bottleneck,
    chain_min_components,
    enumerate_tree_optima,
)
from repro.baselines.exact_dp import bandwidth_min_dp
from repro.baselines.greedy import equal_blocks_cut, first_fit_cut, random_feasible_cut
from repro.baselines.hansen_lih import ccp_hansen_lih
from repro.baselines.heterogeneous import ccp_hetero_dp, ccp_hetero_probe
from repro.baselines.host_satellite import (
    HostSatelliteResult,
    brute_force_host_satellite,
    host_satellite_min_bottleneck,
)
from repro.baselines.kundu_misra import processor_min_bottom_up
from repro.baselines.nicol import bandwidth_min_nlogn
from repro.baselines.sliding_window import bandwidth_min_deque
from repro.baselines.star_knapsack import (
    KnapsackSolution,
    knapsack_01,
    knapsack_items_to_cut,
    knapsack_to_star,
    cut_to_knapsack_items,
    star_bandwidth_min,
)
from repro.baselines.tree_dp import min_components_exact, min_cuts_exact

__all__ = [
    "BruteForceOptimum",
    "CCPResult",
    "KnapsackSolution",
    "bandwidth_min_deque",
    "bandwidth_min_dp",
    "bandwidth_min_nlogn",
    "bokhari_pipelined_dp",
    "ccp_dp",
    "ccp_hansen_lih",
    "ccp_probe",
    "chain_min_bandwidth",
    "chain_min_bottleneck",
    "chain_min_components",
    "ccp_hetero_dp",
    "ccp_hetero_probe",
    "HostSatelliteResult",
    "brute_force_host_satellite",
    "host_satellite_min_bottleneck",
    "cut_to_knapsack_items",
    "enumerate_tree_optima",
    "equal_blocks_cut",
    "first_fit_cut",
    "knapsack_01",
    "knapsack_items_to_cut",
    "knapsack_to_star",
    "min_components_exact",
    "min_cuts_exact",
    "processor_min_bottom_up",
    "random_feasible_cut",
    "star_bandwidth_min",
]
