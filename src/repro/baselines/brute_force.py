"""Brute-force oracles over all edge subsets (tiny instances only).

Exhaustively enumerates every cut ``S ⊆ E`` — ``2^(n-1)`` subsets — and
reports the optimum for each of the paper's three objectives.  This is
the ground truth the property-based tests compare every polynomial
algorithm against; it is deliberately unoptimized and refuses instances
large enough to be slow.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import List, Optional, Set, Tuple

from repro.graphs.chain import Chain
from repro.graphs.task_graph import Edge
from repro.graphs.tree import Tree
from repro.verify.contracts import complexity

_MAX_EDGES = 18


@dataclass(frozen=True)
class BruteForceOptimum:
    """Optimal objective values over all feasible cuts of one instance."""

    feasible: bool
    min_bandwidth: Optional[float]
    min_bottleneck: Optional[float]
    min_components: Optional[int]
    best_bandwidth_cut: Optional[Tuple[Edge, ...]]


def _check_size(num_edges: int) -> None:
    if num_edges > _MAX_EDGES:
        raise ValueError(
            f"brute force limited to {_MAX_EDGES} edges, got {num_edges}"
        )


def enumerate_tree_optima(tree: Tree, bound: float) -> BruteForceOptimum:
    """Exhaustive optimum for all three objectives on a tree."""
    _check_size(tree.num_edges)
    edges = list(tree.edges())
    best_bw = None
    best_bw_cut: Optional[Tuple[Edge, ...]] = None
    best_bn = None
    best_k = None
    feasible = False
    for r in range(len(edges) + 1):
        for subset in combinations(edges, r):
            cut: Set[Edge] = set(subset)
            if any(w > bound for w in tree.component_weights(cut)):
                continue
            feasible = True
            bandwidth = sum(tree.edge_weight(u, v) for u, v in cut)
            bottleneck = max(
                (tree.edge_weight(u, v) for u, v in cut), default=0.0
            )
            components = len(cut) + 1
            if best_bw is None or bandwidth < best_bw:
                best_bw = bandwidth
                best_bw_cut = subset
            if best_bn is None or bottleneck < best_bn:
                best_bn = bottleneck
            if best_k is None or components < best_k:
                best_k = components
    return BruteForceOptimum(feasible, best_bw, best_bn, best_k, best_bw_cut)


@complexity("2^n n")
def chain_min_bandwidth(chain: Chain, bound: float) -> Optional[float]:
    """Exhaustive minimum cut weight for a chain (None if infeasible)."""
    _check_size(chain.num_edges)
    indices = list(range(chain.num_edges))
    best: Optional[float] = None
    for r in range(len(indices) + 1):
        for subset in combinations(indices, r):
            if not chain.is_feasible_cut(subset, bound):
                continue
            weight = chain.cut_weight(subset)
            if best is None or weight < best:
                best = weight
    return best


def chain_min_components(chain: Chain, bound: float) -> Optional[int]:
    """Exhaustive minimum component count for a chain."""
    _check_size(chain.num_edges)
    indices = list(range(chain.num_edges))
    for r in range(len(indices) + 1):
        for subset in combinations(indices, r):
            if chain.is_feasible_cut(subset, bound):
                return r + 1
    return None


def chain_min_bottleneck(chain: Chain, bound: float) -> Optional[float]:
    """Exhaustive minimum heaviest-cut-edge value for a chain."""
    _check_size(chain.num_edges)
    indices = list(range(chain.num_edges))
    best: Optional[float] = None
    for r in range(len(indices) + 1):
        for subset in combinations(indices, r):
            if not chain.is_feasible_cut(subset, bound):
                continue
            bottleneck = max((chain.edge_weight(i) for i in subset), default=0.0)
            if best is None or bottleneck < best:
                best = bottleneck
    return best


def all_feasible_chain_cuts(
    chain: Chain, bound: float
) -> List[Tuple[int, ...]]:
    """Every feasible cut of a chain (tests of hitting-set equivalence)."""
    _check_size(chain.num_edges)
    indices = list(range(chain.num_edges))
    feasible = []
    for r in range(len(indices) + 1):
        for subset in combinations(indices, r):
            if chain.is_feasible_cut(subset, bound):
                feasible.append(subset)
    return feasible
