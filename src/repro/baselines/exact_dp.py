"""Quadratic dynamic-programming oracle for chain bandwidth minimization.

The textbook formulation of the Section 2.3 problem: let ``D[j]`` be the
minimum cut weight over all feasible partitions of the prefix
``v_0 .. v_j`` whose last cut is edge ``j`` (edge ``j`` separates tasks
``j`` and ``j+1``).  Then

.. math::

    D[j] = \\beta_j + \\min \\{ D[i] : \\text{weight}(v_{i+1}..v_j) \\le K \\}

with the virtual predecessor ``D[-1] = 0`` admissible when the whole
prefix fits in ``K``, and the answer is the best ``D[j]`` whose suffix
``v_{j+1} .. v_{n-1}`` also fits (or 0 when the whole chain fits).

This scans the feasible window directly — ``O(n^2)`` worst case — and is
the primary correctness oracle: every other chain algorithm in the
repository is cross-checked against it.
"""

from __future__ import annotations

from typing import List

from repro.core.bandwidth import ChainCutResult
from repro.core.feasibility import validate_bound
from repro.graphs.chain import Chain
from repro.verify.contracts import complexity


@complexity("n^2")
def bandwidth_min_dp(chain: Chain, bound: float) -> ChainCutResult:
    """Exact minimum-bandwidth load-bounded cut, ``O(n^2)``."""
    validate_bound(chain.alpha, bound)
    n = chain.num_tasks
    prefix = chain.prefix_weights()
    if prefix[n] <= bound:
        return ChainCutResult(chain, [], 0.0)

    beta = chain.beta
    num_edges = chain.num_edges
    INF = float("inf")
    cost: List[float] = [INF] * num_edges
    pred: List[int] = [-2] * num_edges  # -1 = virtual start, -2 = unreachable

    for j in range(num_edges):
        # Block after cut i (exclusive) up to task j must fit:
        # prefix[j+1] - prefix[i+1] <= bound.
        best = INF
        best_i = -2
        if prefix[j + 1] <= bound:
            best = 0.0
            best_i = -1
        i = j - 1
        while i >= 0 and prefix[j + 1] - prefix[i + 1] <= bound:
            if cost[i] < best:
                best = cost[i]
                best_i = i
            i -= 1
        if best_i != -2:
            cost[j] = best + beta[j]
            pred[j] = best_i

    best_final = INF
    best_j = -2
    for j in range(num_edges):
        if cost[j] < best_final and prefix[n] - prefix[j + 1] <= bound:
            best_final = cost[j]
            best_j = j
    assert best_j != -2, "validate_bound guarantees a feasible cut exists"

    cut: List[int] = []
    j = best_j
    while j >= 0:
        cut.append(j)
        j = pred[j]
    cut.reverse()
    return ChainCutResult(chain, cut, best_final)
