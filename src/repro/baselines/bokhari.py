"""Bokhari-style chains-on-chains partitioners (reference [5]).

Bokhari (1988) partitions a linear task graph over ``m`` processors of a
linear array, minimizing the *bottleneck processor load*.  The paper
cites his ``O(n^3 m)`` algorithm as the starting point of the line of
work it improves on, so this module provides the chains-on-chains
family used in the comparison benchmarks:

- :func:`ccp_dp` — the layered-graph dynamic program (flattened to the
  textbook ``O(m n^2)`` form);
- :func:`ccp_probe` — probe-based bisection (feasibility of a candidate
  bottleneck checked by a greedy ``O(n)`` sweep), exact on integer
  weights;
- :func:`bokhari_pipelined_dp` — Bokhari's pipelined model where a
  processor's load includes the communication on its boundary edges.

These solve a *different* problem from the paper's Section 2 algorithms
(fixed processor count, minimize bottleneck load, no bound ``K``), which
is exactly why the paper's shared-memory formulation is interesting; the
benchmarks put the two families side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.graphs.chain import Chain
from repro.verify.contracts import complexity


@dataclass(frozen=True)
class CCPResult:
    """A chains-on-chains partition: cut indices, block count, bottleneck."""

    cut_indices: Tuple[int, ...]
    num_blocks: int
    bottleneck: float


def _block_sum(prefix: List[float], lo: int, hi: int) -> float:
    """Weight of tasks lo..hi inclusive."""
    return prefix[hi + 1] - prefix[lo]


@complexity("m n^2")
def ccp_dp(chain: Chain, num_processors: int) -> CCPResult:
    """Partition a chain into at most ``num_processors`` contiguous blocks
    minimizing the maximum block weight.  ``O(m n^2)`` DP."""
    if num_processors < 1:
        raise ValueError("need at least one processor")
    n = chain.num_tasks
    m = min(num_processors, n)
    prefix = chain.prefix_weights()
    INF = float("inf")

    # dp[j] = min bottleneck partitioning tasks 0..j-1 into the current
    # number of blocks; rolled over k.
    dp = [INF] * (n + 1)
    choice = [[0] * (n + 1) for _ in range(m + 1)]
    dp[0] = 0.0
    for j in range(1, n + 1):
        dp[j] = _block_sum(prefix, 0, j - 1)
    prev = list(dp)
    for k in range(2, m + 1):
        current = [INF] * (n + 1)
        current[0] = 0.0
        for j in range(1, n + 1):
            best = INF
            best_i = 0
            for i in range(j):
                if prev[i] == INF:
                    continue
                candidate = max(prev[i], _block_sum(prefix, i, j - 1))
                if candidate < best:
                    best = candidate
                    best_i = i
            current[j] = best
            choice[k][j] = best_i
        prev = current

    # Reconstruct cuts from the last layer.
    cuts: List[int] = []
    j = n
    for k in range(m, 1, -1):
        i = choice[k][j]
        if i > 0:
            cuts.append(i - 1)  # edge between task i-1 and task i
        j = i
        if j == 0:
            break
    cuts = sorted(set(cuts))
    bottleneck = max(chain.component_weights(cuts))
    return CCPResult(tuple(cuts), len(cuts) + 1, bottleneck)


def probe(chain: Chain, num_processors: int, candidate: float) -> Optional[List[int]]:
    """Greedy feasibility probe: can the chain split into at most
    ``num_processors`` blocks each weighing at most ``candidate``?

    Returns the greedy cut (edge indices) or ``None``.  ``O(n)``.
    """
    if candidate < chain.max_vertex_weight():
        return None
    cuts: List[int] = []
    load = 0.0
    for i, weight in enumerate(chain.alpha):
        if load + weight > candidate:
            cuts.append(i - 1)
            if len(cuts) >= num_processors:
                return None
            load = weight
        else:
            load += weight
    return cuts


@complexity("n log u")
def ccp_probe(chain: Chain, num_processors: int) -> CCPResult:
    """Probe-based chains-on-chains partitioning.

    Bisects the bottleneck value; exact when vertex weights are integers
    (the search is over integers), otherwise converges to float
    precision and snaps to the realized maximum block weight.
    """
    if num_processors < 1:
        raise ValueError("need at least one processor")
    total = chain.total_weight()
    lo = max(chain.max_vertex_weight(), total / num_processors)
    hi = total
    integral = all(a == int(a) for a in chain.alpha)
    if integral:
        ilo, ihi = int(lo), int(hi)
        if probe(chain, num_processors, float(ilo)) is not None:
            ihi = ilo
        while ilo < ihi:
            mid = (ilo + ihi) // 2
            if probe(chain, num_processors, float(mid)) is not None:
                ihi = mid
            else:
                ilo = mid + 1
        cuts = probe(chain, num_processors, float(ihi))
    else:
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if probe(chain, num_processors, mid) is not None:
                hi = mid
            else:
                lo = mid
            if hi - lo <= 1e-12 * max(1.0, total):
                break
        cuts = probe(chain, num_processors, hi)
    assert cuts is not None
    bottleneck = max(chain.component_weights(cuts))
    return CCPResult(tuple(cuts), len(cuts) + 1, bottleneck)


@complexity("m n^2")
def bokhari_pipelined_dp(chain: Chain, num_processors: int) -> CCPResult:
    """Bokhari's pipelined model: a block's load includes the weight of
    the edges on its two boundaries (data must be received and sent).

    Minimizes ``max_block (sum alpha + beta_left + beta_right)`` over
    partitions into at most ``num_processors`` blocks.  ``O(m n^2)``.
    """
    if num_processors < 1:
        raise ValueError("need at least one processor")
    n = chain.num_tasks
    m = min(num_processors, n)
    prefix = chain.prefix_weights()
    beta = chain.beta
    INF = float("inf")

    def load(lo: int, hi: int) -> float:
        left = beta[lo - 1] if lo > 0 else 0.0
        right = beta[hi] if hi < n - 1 else 0.0
        return _block_sum(prefix, lo, hi) + left + right

    # values[k][j] = min bottleneck splitting tasks 0..j-1 into exactly k
    # blocks; unlike the communication-free model this is NOT monotone in
    # k (each split adds boundary traffic), so every k <= m is kept and
    # the best complete layer wins.
    values: List[List[float]] = [[INF] * (n + 1)]
    parents: List[List[int]] = [[0] * (n + 1)]
    first = [INF] * (n + 1)
    for j in range(1, n + 1):
        first[j] = load(0, j - 1)
    values.append(first)
    parents.append([0] * (n + 1))
    for k in range(2, m + 1):
        prev = values[k - 1]
        current = [INF] * (n + 1)
        parent = [0] * (n + 1)
        for j in range(k, n + 1):
            best, best_i = INF, 0
            for i in range(k - 1, j):
                if prev[i] == INF:
                    continue
                candidate = max(prev[i], load(i, j - 1))
                if candidate < best:
                    best, best_i = candidate, i
            current[j] = best
            parent[j] = best_i
        values.append(current)
        parents.append(parent)

    best_k = min(range(1, m + 1), key=lambda k: values[k][n])
    cuts: List[int] = []
    j = n
    for k in range(best_k, 1, -1):
        i = parents[k][j]
        cuts.append(i - 1)
        j = i
    cuts = sorted(set(cuts))
    blocks = chain.cut_components(cuts)
    bottleneck = max(load(lo, hi) for lo, hi in blocks)
    return CCPResult(tuple(cuts), len(cuts) + 1, bottleneck)
