"""Host–satellite tree partitioning (Bokhari's polynomial tree case).

The paper's related-work discussion notes that "Bokhari's bottleneck
minimization problem takes polynomial time when the task graph is a
tree and target architecture is single host multiple (identical)
satellite system".  This module provides that comparison point.

Model (single host, unlimited identical satellites):

* the task graph is a rooted tree; the root stays on the host;
* a cut edge ``(parent, v)`` offloads the *entire* subtree under ``v``
  to a dedicated satellite (satellites cannot talk to each other, so
  offloaded pieces must be whole subtrees and nested offloads are
  pointless — the outermost cut already removed the work);
* satellite load = subtree weight + the cut edge's communication;
* host load = weight kept on the host + communication of all cut edges;
* objective: minimize the bottleneck ``max(host load, satellite loads)``.

For a candidate bottleneck ``B`` the feasibility question is solved by
a greedy DP: walking bottom-up, offload a subtree exactly when it is
allowed (``subtree weight + edge <= B``) and profitable (the edge costs
the host less than keeping the subtree).  The minimum feasible ``B`` is
then found by bisection; the tests validate optimality against
brute-force enumeration of offload sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.graphs.task_graph import Edge
from repro.graphs.tree import Tree


@dataclass
class HostSatelliteResult:
    """An offload plan: cut edges, per-satellite loads, host load."""

    tree: Tree
    root: int
    offloaded: Set[Edge]
    host_load: float
    satellite_loads: List[float]

    @property
    def bottleneck(self) -> float:
        return max([self.host_load] + self.satellite_loads)

    @property
    def num_satellites(self) -> int:
        return len(self.satellite_loads)


def _best_host_load(
    tree: Tree, root: int, bound: float
) -> Tuple[float, Set[Edge], List[float]]:
    """Minimum host load when every satellite must stay within ``bound``.

    Greedy bottom-up: because offloading subtree ``v`` replaces its
    *entire* host-side contribution by the single edge weight, and
    contributions are additive and independent across siblings, the
    host-optimal plan offloads ``v`` iff it fits a satellite and the
    edge is cheaper than the subtree's own best host-side cost.
    """
    order, parent = tree.post_order(root)
    subtree = tree.subtree_weights(root)
    # host_cost[v] = min host-side cost contributed by v's subtree,
    # assuming v itself stays on the host.
    host_cost = [0.0] * tree.num_vertices
    offloaded: Set[Edge] = set()
    satellite_loads: List[float] = []
    chosen: List[List[Edge]] = [[] for _ in range(tree.num_vertices)]
    loads: List[List[float]] = [[] for _ in range(tree.num_vertices)]

    for v in order:
        cost = tree.vertex_weight(v)
        cuts: List[Edge] = []
        sat: List[float] = []
        for c in tree.neighbors(v):
            if parent[c] != v:
                continue
            edge = (v, c) if v < c else (c, v)
            edge_w = tree.edge_weight(v, c)
            keep = host_cost[c]
            sat_load = subtree[c] + edge_w
            if sat_load <= bound and edge_w < keep:
                cost += edge_w
                cuts.append(edge)
                sat.append(sat_load)
            else:
                cost += keep
                cuts.extend(chosen[c])
                sat.extend(loads[c])
        host_cost[v] = cost
        chosen[v] = cuts
        loads[v] = sat

    return host_cost[root], set(chosen[root]), loads[root]


def host_satellite_min_bottleneck(
    tree: Tree, root: int = 0, tolerance: float = 1e-9
) -> HostSatelliteResult:
    """Minimize ``max(host load, satellite loads)`` by bisection on B.

    Bisection runs on the bottleneck value; each probe is the linear
    greedy above.  Converges to within ``tolerance`` of the optimum and
    snaps to the realized bottleneck of the final plan.
    """
    total = tree.total_vertex_weight()
    # B can never beat the heaviest single vertex kept on the host.
    lo = tree.vertex_weight(root)
    hi = total  # keeping everything on the host is always feasible

    def plan_for(bound: float) -> HostSatelliteResult:
        host, cuts, sats = _best_host_load(tree, root, bound)
        return HostSatelliteResult(tree, root, cuts, host, sats)

    best = plan_for(hi)
    hi = best.bottleneck
    for _ in range(200):
        if hi - lo <= tolerance * max(1.0, total):
            break
        mid = 0.5 * (lo + hi)
        candidate = plan_for(mid)
        if candidate.bottleneck <= mid:
            best = candidate
            hi = min(mid, candidate.bottleneck)
        else:
            lo = mid
    return best


def brute_force_host_satellite(
    tree: Tree, root: int = 0
) -> HostSatelliteResult:
    """Exhaustive optimum over all antichains of offloaded subtrees
    (tiny instances; used as the test oracle)."""
    if tree.num_edges > 16:
        raise ValueError("brute force limited to 16 edges")
    _order, parent = tree.post_order(root)
    subtree = tree.subtree_weights(root)
    edges = [
        (min(p, v), max(p, v))
        for v, p in enumerate(parent)
        if p >= 0
    ]
    child_of_edge = {}
    for v, p in enumerate(parent):
        if p >= 0:
            child_of_edge[(min(p, v), max(p, v))] = v

    def is_antichain(selected: List[Edge]) -> bool:
        roots = [child_of_edge[e] for e in selected]
        for r in roots:
            p = parent[r]
            while p >= 0:
                if p in roots:
                    return False
                p = parent[p]
        return True

    from itertools import combinations

    best: Optional[HostSatelliteResult] = None
    for r in range(len(edges) + 1):
        for combo in combinations(edges, r):
            selected = list(combo)
            if not is_antichain(selected):
                continue
            sat_loads = []
            host = tree.total_vertex_weight()
            for e in selected:
                child = child_of_edge[e]
                w = tree.edge_weight(*e)
                sat_loads.append(subtree[child] + w)
                host -= subtree[child]
                host += w
            plan = HostSatelliteResult(tree, root, set(selected), host, sat_loads)
            if best is None or plan.bottleneck < best.bottleneck:
                best = plan
    assert best is not None
    return best
