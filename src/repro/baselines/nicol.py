"""Nicol & O'Hallaron-style ``O(n log n)`` chain partitioner.

Reference [11] of the paper solves the shared-memory linear-task-graph
partitioning problem in ``O(n log n)`` time and ``O(n)`` space; it is
the "best known algorithm" the paper's Algorithm 4.1 is measured
against.  The original 1991 article is not redistributable here, so this
module provides a complexity-faithful reimplementation: the same DP as
:mod:`repro.baselines.exact_dp`, with the sliding-window minimum
maintained by a lazy-deletion binary heap — ``O(log n)`` per step,
``O(n log n)`` total, ``O(n)`` space.

It returns provably optimal cuts (cross-checked against the quadratic
oracle) at the stated complexity, which is exactly the role the baseline
plays in the paper's comparison (Section 2.3.2).
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.core.bandwidth import ChainCutResult
from repro.core.feasibility import validate_bound
from repro.graphs.chain import Chain
from repro.verify.contracts import complexity

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.observability import Span, Tracer


@complexity("n log n", counters=("heap_pushes", "heap_pops"))
def bandwidth_min_nlogn(
    chain: Chain, bound: float, tracer: Optional["Tracer"] = None
) -> ChainCutResult:
    """Exact minimum-bandwidth load-bounded cut in ``O(n log n)``.

    An enabled ``tracer`` wraps the DP in a ``nicol_dp_sweep`` span
    counting heap pushes and lazy pops — the baseline's analogue of the
    paper's search steps, so traced comparisons against Algorithm 4.1
    measure both sides in the same units.
    """
    traced = tracer is not None and tracer.enabled
    if not traced:
        return _nlogn_impl(chain, bound)
    with tracer.span(
        "nicol_dp_sweep", n=chain.num_tasks, bound=bound
    ) as span:
        result = _nlogn_impl(chain, bound, span)
        span.set("weight", result.weight)
    return result


def _nlogn_impl(
    chain: Chain, bound: float, span: Optional["Span"] = None
) -> ChainCutResult:
    validate_bound(chain.alpha, bound)
    n = chain.num_tasks
    prefix = chain.prefix_weights()
    if prefix[n] <= bound:
        return ChainCutResult(chain, [], 0.0)

    beta = chain.beta
    num_edges = chain.num_edges
    INF = float("inf")
    cost: List[float] = [INF] * num_edges
    pred: List[int] = [-2] * num_edges

    heap: List[Tuple[float, int]] = [(0.0, -1)]  # (cost, cut index)
    window_start = -1  # smallest predecessor index still in the window
    next_candidate = 0
    counting = span is not None
    heap_pushes = 0
    heap_pops = 0

    for j in range(num_edges):
        while next_candidate < j:
            i = next_candidate
            if cost[i] < INF:  # repro-mutate: equivalent=flip-compare -- cost is finite for every prefix once K >= alpha_max (singleton blocks fit)
                heapq.heappush(heap, (cost[i], i))
                if counting:
                    heap_pushes += 1
            next_candidate += 1
        # Advance the window start past infeasible predecessors.
        while (
            window_start < j - 1  # repro-mutate: equivalent=flip-compare -- at window_start == j-1 the single-task window never exceeds a validated bound
            and prefix[j + 1] - prefix[window_start + 1] > bound
        ):
            window_start += 1
        # Lazily drop heap entries that fell out of the window.
        while heap and heap[0][1] < window_start:
            heapq.heappop(heap)
            if counting:
                heap_pops += 1
        if heap and prefix[j + 1] - prefix[heap[0][1] + 1] <= bound:  # repro-mutate: equivalent=shift-index -- stale tops were popped above, so the heap top is already inside the feasible window
            best, best_i = heap[0]
            cost[j] = best + beta[j]
            pred[j] = best_i

    best_final = INF
    best_j = -2
    for j in range(num_edges):
        if cost[j] < best_final and prefix[n] - prefix[j + 1] <= bound:
            best_final = cost[j]
            best_j = j
    assert best_j != -2

    if counting:
        span.add("heap_pushes", heap_pushes)
        span.add("heap_pops", heap_pops)
    cut: List[int] = []
    j = best_j
    while j >= 0:
        cut.append(j)
        j = pred[j]
    cut.reverse()
    return ChainCutResult(chain, cut, best_final)
