"""Bottom-up minimum-cardinality tree partitioning (Kundu–Misra style).

An independent implementation of the classic bottom-up greedy for
partitioning a tree into the fewest components of bounded weight:
process vertices leaves-up; whenever the accumulated cluster at a vertex
exceeds the bound, detach its heaviest child clusters until it fits.

The paper's Algorithm 2.2 is an unrooted reformulation of the same rule
(it credits an edge-integrity algorithm [1]); having two independently
coded versions lets the test suite check them against each other and
against the exact DP oracle.  This version differs superficially: it
accumulates *all* children before cutting, whereas Algorithm 2.2 works
centre-by-centre — the minimized objective (|S|) always agrees.
"""

from __future__ import annotations

from typing import List, Set

from repro.core.bottleneck import TreeCutResult
from repro.core.feasibility import validate_bound
from repro.graphs.task_graph import Edge
from repro.graphs.tree import Tree
from repro.verify.contracts import complexity


@complexity("n log n")
def processor_min_bottom_up(tree: Tree, bound: float, root: int = 0) -> TreeCutResult:
    """Minimum-cardinality load-bounded tree cut, bottom-up greedy."""
    validate_bound(tree.vertex_weights, bound)
    order, parent = tree.post_order(root)
    cluster = list(tree.vertex_weights)
    children: List[List[int]] = [[] for _ in range(tree.num_vertices)]
    for v in order:
        if parent[v] >= 0:
            children[parent[v]].append(v)

    cut: Set[Edge] = set()
    for v in order:
        total = cluster[v] + sum(cluster[c] for c in children[v])
        if total > bound:
            for c in sorted(children[v], key=lambda c: (-cluster[c], c)):
                if total <= bound:
                    break
                total -= cluster[c]
                cut.add((v, c) if v < c else (c, v))
        cluster[v] = total

    bottleneck = max((tree.edge_weight(u, w) for u, w in cut), default=0.0)
    return TreeCutResult(tree, cut, bottleneck)
