"""Monotone-deque chain bandwidth minimization — ``O(n)``.

The DP window of :mod:`repro.baselines.exact_dp` slides monotonically
(the feasible predecessor range only moves right as ``j`` grows), so a
classic monotone deque yields the window minimum in amortized ``O(1)``.
This post-dates the paper's toolbox — it is included as the modern
reference point in the algorithm-comparison benchmark and as a third
independent implementation for cross-checking.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Tuple

from repro.core.bandwidth import ChainCutResult
from repro.core.feasibility import validate_bound
from repro.graphs.chain import Chain
from repro.verify.contracts import complexity


@complexity("n")
def bandwidth_min_deque(chain: Chain, bound: float) -> ChainCutResult:
    """Exact minimum-bandwidth load-bounded cut in linear time."""
    validate_bound(chain.alpha, bound)
    n = chain.num_tasks
    prefix = chain.prefix_weights()
    if prefix[n] <= bound:
        return ChainCutResult(chain, [], 0.0)

    beta = chain.beta
    num_edges = chain.num_edges
    INF = float("inf")
    cost: List[float] = [INF] * num_edges
    pred: List[int] = [-2] * num_edges

    # window holds candidate predecessors i (cut indices, -1 = virtual
    # start with cost 0) with increasing i and increasing cost.
    window: Deque[Tuple[int, float]] = deque()
    window.append((-1, 0.0))
    next_candidate = 0  # next cut index to push into the window

    for j in range(num_edges):
        # Admit predecessors i <= j - 1 (their cost is final).
        while next_candidate < j:
            i = next_candidate
            if cost[i] < INF:
                while window and window[-1][1] >= cost[i]:
                    window.pop()
                window.append((i, cost[i]))
            next_candidate += 1
        # Evict predecessors whose block (i+1 .. j) would exceed the bound.
        # Same float expression as exact_dp so borderline blocks are
        # judged identically across implementations.
        while window and prefix[j + 1] - prefix[window[0][0] + 1] > bound:
            window.popleft()
        if window:
            best_i, best = window[0]
            cost[j] = best + beta[j]
            pred[j] = best_i

    best_final = INF
    best_j = -2
    for j in range(num_edges):
        if cost[j] < best_final and prefix[n] - prefix[j + 1] <= bound:
            best_final = cost[j]
            best_j = j
    assert best_j != -2

    cut: List[int] = []
    j = best_j
    while j >= 0:
        cut.append(j)
        j = pred[j]
    cut.reverse()
    return ChainCutResult(chain, cut, best_final)
