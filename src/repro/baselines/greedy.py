"""Greedy and naive comparison partitions.

These are the "straw" partitioners the application benchmarks (machine
throughput, distributed simulation message counts) compare the paper's
algorithms against: they satisfy the load bound but ignore edge weights,
which is precisely the behaviour the paper's bandwidth objective fixes.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.core.bandwidth import ChainCutResult
from repro.core.feasibility import validate_bound
from repro.graphs.chain import Chain
from repro.verify.contracts import complexity


@complexity("n")
def first_fit_cut(chain: Chain, bound: float) -> ChainCutResult:
    """Scan left to right, cutting just before a block would overflow.

    Produces the minimum possible number of blocks (every block is
    maximal) but pays no attention to the weight of the edges it cuts.
    """
    validate_bound(chain.alpha, bound)
    cuts: List[int] = []
    load = 0.0
    for i, weight in enumerate(chain.alpha):
        if load + weight > bound:
            cuts.append(i - 1)
            load = weight
        else:
            load += weight
    return ChainCutResult(chain, cuts, chain.cut_weight(cuts))


def equal_blocks_cut(chain: Chain, num_blocks: int) -> ChainCutResult:
    """Split into ``num_blocks`` blocks of (nearly) equal task counts —
    the naive "block" mapping; ignores all weights."""
    if not (1 <= num_blocks <= chain.num_tasks):
        raise ValueError(f"cannot make {num_blocks} blocks of {chain.num_tasks} tasks")
    n = chain.num_tasks
    cuts = []
    for b in range(1, num_blocks):
        boundary = (b * n) // num_blocks
        cuts.append(boundary - 1)
    cuts = sorted(set(cuts))
    return ChainCutResult(chain, cuts, chain.cut_weight(cuts))


def random_feasible_cut(
    chain: Chain, bound: float, rng: Optional[random.Random] = None
) -> ChainCutResult:
    """A random feasible cut: start from the first-fit cut positions and
    jitter each boundary uniformly within its slack."""
    validate_bound(chain.alpha, bound)
    r = rng or random.Random()
    base = first_fit_cut(chain, bound).cut_indices
    if not base:
        return ChainCutResult(chain, [], 0.0)
    # Rebuild greedily but choose each cut uniformly among positions
    # that keep both the running block and the remaining suffix viable.
    prefix = chain.prefix_weights()
    n = chain.num_tasks
    cuts: List[int] = []
    start = 0
    while True:
        if prefix[n] - prefix[start] <= bound:
            break  # remainder fits in one block
        # Latest cut c keeps block (start..c) within bound.
        latest = start
        while (
            latest + 1 < n - 1
            and prefix[latest + 2] - prefix[start] <= bound
        ):
            latest += 1
        cut = r.randint(start, latest)
        cuts.append(cut)
        start = cut + 1
    return ChainCutResult(chain, cuts, chain.cut_weight(cuts))
