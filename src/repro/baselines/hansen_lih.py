"""Hansen & Lih-style chains-on-chains partitioning (reference [8]).

Hansen and Lih (1992) gave an alternative ``O(m^2 n)`` algorithm for
Bokhari's partitioning problem that the paper describes as "different,
more lucid".  This module provides a lucid exact DP in the same spirit,
accelerated with the standard monotonicity observation: in

.. math::

    B_k(j) = \\min_i \\max\\big(B_{k-1}(i),\\ S(i{+}1, j)\\big)

the first term is non-decreasing and the second non-increasing in ``i``,
so the optimal ``i`` is found by binary search — ``O(m n log n)``
overall.  Exactness is cross-checked against :func:`repro.baselines.bokhari.ccp_dp`.
"""

from __future__ import annotations

from typing import List

from repro.baselines.bokhari import CCPResult
from repro.graphs.chain import Chain
from repro.verify.contracts import complexity


@complexity("m n log n")
def ccp_hansen_lih(chain: Chain, num_processors: int) -> CCPResult:
    """Minimize the maximum block weight over at most ``num_processors``
    contiguous blocks, via the monotone DP."""
    if num_processors < 1:
        raise ValueError("need at least one processor")
    n = chain.num_tasks
    m = min(num_processors, n)
    prefix = chain.prefix_weights()
    INF = float("inf")

    prev: List[float] = [
        prefix[j] for j in range(n + 1)
    ]  # k = 1: one block covering 0..j-1
    choices: List[List[int]] = [[0] * (n + 1)]
    for _k in range(2, m + 1):
        current = [INF] * (n + 1)
        parent = [0] * (n + 1)
        current[0] = 0.0
        for j in range(1, n + 1):
            # minimize over i in [0, j-1] of max(prev[i], prefix[j]-prefix[i]).
            # prev[i] is non-decreasing in i, the block term decreasing:
            # binary search for the crossover, then check its neighbours.
            lo, hi = 0, j - 1
            while lo < hi:
                mid = (lo + hi) // 2
                if prev[mid] >= prefix[j] - prefix[mid]:
                    hi = mid
                else:
                    lo = mid + 1
            best, best_i = INF, 0
            for i in (lo - 1, lo):
                if 0 <= i < j and prev[i] < INF:
                    candidate = max(prev[i], prefix[j] - prefix[i])
                    if candidate < best:
                        best, best_i = candidate, i
            current[j] = best
            parent[j] = best_i
        choices.append(parent)
        prev = current

    cuts: List[int] = []
    j = n
    for k in range(m - 1, 0, -1):
        i = choices[k][j]
        if i > 0:
            cuts.append(i - 1)
        j = i
        if j == 0:
            break
    cuts = sorted(set(cuts))
    bottleneck = max(chain.component_weights(cuts))
    return CCPResult(tuple(cuts), len(cuts) + 1, bottleneck)
