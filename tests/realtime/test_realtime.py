"""Unit tests for :mod:`repro.realtime` (spec, planner, schedule)."""

import pytest

from repro.machine.interconnect import SharedBus
from repro.machine.machine import SharedMemoryMachine
from repro.realtime.planner import compare_objectives, plan_realtime_task
from repro.realtime.schedule import build_schedule, pipeline_period
from repro.realtime.spec import RealTimeTask


@pytest.fixture
def task():
    return RealTimeTask("t", [4, 3, 5, 2, 6], [7, 1, 9, 2], deadline=9.0)


@pytest.fixture
def machine():
    return SharedMemoryMachine(16, interconnect=SharedBus(bandwidth=10.0))


class TestSpec:
    def test_valid(self, task):
        assert task.num_subtasks == 5
        assert task.utilization_bound() == pytest.approx(20 / 9)

    def test_to_chain(self, task, small_chain):
        assert task.to_chain() == small_chain

    def test_rejects_oversized_subtask(self):
        with pytest.raises(ValueError, match="not schedulable"):
            RealTimeTask("t", [4, 12], [1], deadline=9.0)

    def test_rejects_bad_dependency_count(self):
        with pytest.raises(ValueError, match="dependency"):
            RealTimeTask("t", [4, 3], [1, 2], deadline=9.0)

    def test_rejects_bad_deadline(self):
        with pytest.raises(ValueError, match="deadline"):
            RealTimeTask("t", [4], [], deadline=0.0)

    def test_single_subtask(self):
        task = RealTimeTask("t", [4], [], deadline=5.0)
        assert task.num_subtasks == 1


class TestPlanner:
    def test_meets_deadline(self, task, machine):
        plan = plan_realtime_task(task, machine)
        assert plan.meets_deadline
        assert plan.worst_component_time <= task.deadline
        assert plan.slack >= 0

    def test_bandwidth_objective_optimal(self, task, machine):
        plan = plan_realtime_task(task, machine, "bandwidth")
        assert plan.traffic.total_demand == 3  # known optimum for K=9

    def test_processors_used(self, task, machine):
        plan = plan_realtime_task(task, machine)
        assert plan.processors_used == len(plan.component_costs)
        assert plan.processors_used <= machine.num_processors

    def test_speed_scales_bound(self, task):
        # A 2x machine can swallow the whole task in one component:
        # 20 work units / speed 2 = 10 > 9 still misses... use 2.5x.
        fast = SharedMemoryMachine(4, speed=2.5)
        plan = plan_realtime_task(task, fast)
        assert plan.processors_used == 1
        assert plan.meets_deadline

    def test_too_few_processors(self, task):
        tiny = SharedMemoryMachine(1)
        with pytest.raises(ValueError, match="exceed"):
            plan_realtime_task(task, tiny)

    def test_compare_objectives(self, task, machine):
        plans = compare_objectives(task, machine)
        assert len(plans) == 4
        assert all(p.meets_deadline for p in plans)
        by_objective = {p.objective: p for p in plans}
        # Bandwidth plan has the smallest network demand.
        assert (
            by_objective["bandwidth"].traffic.total_demand
            <= by_objective["processors"].traffic.total_demand
        )
        # Processor plan uses the fewest processors.
        assert (
            by_objective["processors"].processors_used
            <= by_objective["bandwidth"].processors_used
        )

    def test_summary(self, task, machine):
        text = plan_realtime_task(task, machine).summary()
        assert "MEETS" in text
        assert "processors" in text


class TestSchedule:
    def test_stage_accounting(self, task, machine):
        plan = plan_realtime_task(task, machine)
        schedules = build_schedule(plan, machine)
        assert len(schedules) == plan.processors_used
        # Stages partition the subtasks contiguously.
        assert schedules[0].first_subtask == 0
        assert schedules[-1].last_subtask == task.num_subtasks - 1
        for a, b in zip(schedules, schedules[1:]):
            assert b.first_subtask == a.last_subtask + 1

    def test_last_stage_sends_nothing(self, task, machine):
        schedules = build_schedule(plan_realtime_task(task, machine), machine)
        assert schedules[-1].send_volume == 0.0
        assert schedules[-1].send_time == 0.0

    def test_slack_consistent(self, task, machine):
        plan = plan_realtime_task(task, machine)
        for stage in build_schedule(plan, machine):
            assert stage.slack == pytest.approx(
                task.deadline - stage.compute_time
            )
            assert stage.slack >= 0

    def test_pipeline_period(self, task, machine):
        schedules = build_schedule(plan_realtime_task(task, machine), machine)
        period = pipeline_period(schedules)
        assert period >= max(s.compute_time for s in schedules)
