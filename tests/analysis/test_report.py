"""Unit tests for the one-shot reproduction report."""

from repro.analysis.report import ClaimResult, render_report, run_report


class TestReport:
    def test_all_claims_pass_quick(self):
        claims = run_report(quick=True)
        failed = [c.claim for c in claims if not c.passed]
        assert not failed, f"claims failed: {failed}"
        assert len(claims) >= 10

    def test_render(self):
        claims = [
            ClaimResult("good", True, "ok", 0.1),
            ClaimResult("bad", False, "boom", 0.2),
        ]
        text = render_report(claims)
        assert "[PASS] good" in text
        assert "[FAIL] bad" in text
        assert "1/2 claims reproduced" in text
        assert "FAILED" in text

    def test_render_all_pass(self):
        text = render_report([ClaimResult("x", True, "ok", 0.0)])
        assert text.endswith("1/1 claims reproduced")
