"""Unit tests for :mod:`repro.analysis.stats` and
:mod:`repro.analysis.tables`."""

import pytest

from repro.analysis.stats import (
    geometric_mean,
    mean,
    percentile,
    stddev,
    summarize,
)
from repro.analysis.tables import render_table


class TestStats:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0
        with pytest.raises(ValueError):
            mean([])

    def test_stddev(self):
        assert stddev([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(2.138, abs=1e-3)
        assert stddev([5]) == 0.0
        assert stddev([3, 3, 3]) == 0.0

    def test_percentile(self):
        values = [1, 2, 3, 4, 5]
        assert percentile(values, 0) == 1
        assert percentile(values, 50) == 3
        assert percentile(values, 100) == 5
        assert percentile(values, 25) == 2.0
        assert percentile([7], 50) == 7

    def test_percentile_interpolates(self):
        assert percentile([0, 10], 25) == pytest.approx(2.5)

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 150)

    def test_summarize(self):
        summary = summarize([1, 2, 3, 4])
        assert summary["mean"] == 2.5
        assert summary["min"] == 1
        assert summary["max"] == 4

    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([0, 1])
        with pytest.raises(ValueError):
            geometric_mean([])


class TestRenderTable:
    def test_basic(self):
        text = render_table(["a", "bb"], [[1, 2.5], [30, 4]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert "a" in lines[0] and "bb" in lines[0]

    def test_title(self):
        text = render_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_alignment(self):
        text = render_table(["col"], [[1], [100]])
        rows = text.splitlines()[-2:]
        assert len(rows[0]) == len(rows[1])

    def test_float_formatting(self):
        text = render_table(["v"], [[0.00001], [12345.6], [1.5], [0]])
        assert "1e-05" in text
        assert "1.23e+04" in text or "12345" in text
        assert "1.50" in text

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])
