"""Unit tests for trace-report rendering, incl. plan-cache telemetry."""

import pytest

from repro.analysis.trace_report import plan_cache_line, render_trace_report
from repro.observability import MetricsRegistry, Tracer, trace_records


def test_plan_cache_line_absent_without_plan_metrics():
    tracer = Tracer()
    with tracer.span("engine_solve", n=4):
        pass
    records = trace_records(tracer, metrics=MetricsRegistry())
    assert plan_cache_line(records) == ""
    assert "compiled plans" not in render_trace_report(records)


def test_plan_cache_line_summarizes_engine_metrics():
    pytest.importorskip("numpy")
    from repro.engine import PartitionEngine
    from repro.graphs.generators import random_chain

    engine = PartitionEngine()
    chain = random_chain(30, rng=3)
    wmax = chain.max_vertex_weight()
    engine.solve_sweep(chain, [2.0 * wmax, 3.0 * wmax, 2.0 * wmax])
    engine.solve_sweep(chain, [4.0 * wmax])
    records = trace_records(metrics=engine.snapshot_metrics())
    line = plan_cache_line(records)
    assert line.startswith("compiled plans:")
    assert "plans=1" in line
    assert "hits=1" in line and "misses=1" in line
    assert "sweeps=2" in line and "queries=4" in line
    assert "4.0 queries/plan" in line
    report = render_trace_report(records)
    assert line in report
