"""Unit tests for the benchmark ratchet and its CLI subcommand."""

import json

import pytest

from repro.analysis.ratchet import compare_snapshots, render_comparison
from repro.cli import main


def snapshot(**benchmarks):
    return {"version": 1, "benchmarks": benchmarks}


class TestCompareSnapshots:
    def test_holding_the_baseline_passes(self):
        base = snapshot(sweep={"median_ns": 500, "speedup": 10.0})
        fresh = snapshot(sweep={"median_ns": 900, "speedup": 9.0})
        rows, failures = compare_snapshots(base, fresh, tolerance=0.20)
        assert failures == []
        assert [r["passed"] for r in rows] == [True]
        assert rows[0]["floor"] == 8.0

    def test_regression_beyond_tolerance_fails(self):
        base = snapshot(sweep={"speedup": 10.0})
        fresh = snapshot(sweep={"speedup": 7.9})
        rows, failures = compare_snapshots(base, fresh, tolerance=0.20)
        assert len(failures) == 1
        assert "regressed" in failures[0]
        assert rows[0]["passed"] is False

    def test_median_ns_never_gates(self):
        base = snapshot(sweep={"median_ns": 100, "speedup": 5.0})
        fresh = snapshot(sweep={"median_ns": 100_000, "speedup": 5.0})
        _, failures = compare_snapshots(base, fresh)
        assert failures == []

    def test_missing_benchmark_fails(self):
        base = snapshot(sweep={"speedup": 5.0})
        _, failures = compare_snapshots(base, snapshot())
        assert failures == ["benchmark sweep is in the baseline but missing "
                            "from the fresh snapshot"]

    def test_missing_field_fails(self):
        base = snapshot(sweep={"speedup": 5.0})
        fresh = snapshot(sweep={"median_ns": 100})
        _, failures = compare_snapshots(base, fresh)
        assert len(failures) == 1
        assert "no measurement" in failures[0]

    def test_new_fresh_benchmarks_are_ignored(self):
        base = snapshot(sweep={"speedup": 5.0})
        fresh = snapshot(sweep={"speedup": 5.0}, extra={"speedup": 1.0})
        rows, failures = compare_snapshots(base, fresh)
        assert failures == []
        assert len(rows) == 1  # the baseline drives the comparison

    def test_schema_and_tolerance_validation(self):
        good = snapshot()
        with pytest.raises(ValueError, match="version"):
            compare_snapshots({"benchmarks": {}}, good)
        with pytest.raises(ValueError, match="benchmarks"):
            compare_snapshots(good, {"version": 1})
        with pytest.raises(ValueError, match="tolerance"):
            compare_snapshots(good, good, tolerance=1.5)

    def test_render_mentions_verdicts(self):
        base = snapshot(sweep={"speedup": 10.0}, other={"speedup": 2.0})
        fresh = snapshot(sweep={"speedup": 1.0}, other={"speedup": 2.0})
        text = render_comparison(*compare_snapshots(base, fresh))
        assert "FAIL" in text and "ok" in text
        assert "ratchet: FAIL (1/2 gates held)" in text


class TestRatchetCli:
    def write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_pass_and_fail_exit_codes(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", snapshot(s={"speedup": 4.0}))
        good = self.write(tmp_path, "good.json", snapshot(s={"speedup": 4.5}))
        bad = self.write(tmp_path, "bad.json", snapshot(s={"speedup": 1.0}))
        assert main(["ratchet", base, good]) == 0
        assert main(["ratchet", base, bad]) == 1
        assert main(["ratchet", base, bad, "--tolerance", "0.9"]) == 0
        capsys.readouterr()
        assert main(["ratchet", base, good, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["passed"] is True

    def test_unreadable_inputs_exit_two(self, tmp_path):
        base = self.write(tmp_path, "base.json", snapshot())
        garbage = tmp_path / "garbage.json"
        garbage.write_text("{not json")
        assert main(["ratchet", base, str(tmp_path / "missing.json")]) == 2
        assert main(["ratchet", base, str(garbage)]) == 2

    def test_committed_baseline_is_valid(self):
        from pathlib import Path

        import repro

        root = Path(repro.__file__).resolve().parents[2]
        committed = json.loads((root / "BENCH_engine.json").read_text())
        rows, failures = compare_snapshots(committed, committed)
        assert failures == []
        names = {row["benchmark"] for row in rows}
        assert "plan_sweep_100_bounds_warm" in names
        assert "plan_sweep_100_bounds_cold" in names
