"""Unit tests for :mod:`repro.analysis.top` — the ``repro top`` dashboard."""

import io
import math

from repro.analysis.top import (
    DashboardState,
    events_line,
    follow_trace,
    render_dashboard,
)


def solve_event(t, duration, ok=True):
    return {
        "kind": "event", "event": "solve", "t": t, "ok": ok,
        "duration_s": duration, "objective": "bandwidth",
    }


def latency_event(t, value, name="engine.batch.query_latency_s"):
    return {
        "kind": "event", "event": "metric", "metric": "observe",
        "name": name, "value": value, "t": t,
    }


def sample_records():
    records = [{"kind": "meta", "schema": 2, "workload": "batch"}]
    for i in range(10):
        t = float(i)
        duration = 0.001 * (i + 1)
        records.append(solve_event(t, duration, ok=i != 3))
        records.append(latency_event(t, duration))
        records.append(
            {"kind": "event", "event": "metric", "metric": "observe",
             "name": "solve.optimality_gap", "value": 0.05 * i, "t": t}
        )
    records.append(
        {"kind": "event", "event": "cache", "t": 9.0, "action": "miss",
         "hit_rate": 0.75, "hits": 3, "misses": 1, "evictions": 0}
    )
    records.append(
        {"kind": "event", "event": "batch", "t": 9.5, "queries": 10,
         "failures": 1, "workers": 0, "wall_s": 0.1,
         "cache_hit_rate": 0.75, "plan_occupancy": 0.25}
    )
    return records


class TestDashboardState:
    def test_counts_and_window_percentiles(self):
        state = DashboardState(window_s=100.0)
        state.ingest_all(sample_records())
        snap = state.snapshot()
        assert snap["solves"] == 10
        assert snap["failures"] == 1
        assert snap["window_count"] == 10
        assert snap["p50_s"] == 0.005
        assert snap["p99_s"] == 0.010
        assert snap["max_s"] == 0.010
        assert snap["cache_hit_rate"] == 0.75
        assert snap["plan_occupancy"] == 0.25
        assert snap["gap_max"] == 0.45

    def test_window_evicts_old_latencies(self):
        state = DashboardState(window_s=3.0)
        state.ingest_all(sample_records())
        snap = state.snapshot()
        # Events at t=7,8,9 remain ((9-3, 9] half-open window).
        assert snap["window_count"] == 3
        assert snap["p50_s"] == 0.001 * 9  # the t=8 observation
        # Totals are cumulative, not windowed.
        assert snap["solves"] == 10

    def test_throughput_uses_covered_span(self):
        state = DashboardState(window_s=100.0)
        state.ingest_all(sample_records())
        snap = state.snapshot()
        # 10 observations over 9.5 seconds of trace time.
        assert snap["throughput_qps"] == 10 / 9.5

    def test_serial_latency_metric_also_counted(self):
        state = DashboardState(window_s=10.0)
        state.ingest(latency_event(1.0, 0.002, name="engine.query_latency_s"))
        assert state.snapshot()["window_count"] == 1

    def test_acts_as_hub_subscriber(self):
        from repro.observability.live import TelemetryHub

        state = DashboardState(window_s=60.0)
        hub = TelemetryHub([state], clock=lambda: 2.0)
        hub.publish_metric("engine.query_latency_s", "observe", 0.004)
        assert state.snapshot()["p50_s"] == 0.004

    def test_empty_state_renders(self):
        state = DashboardState()
        out = render_dashboard(state)
        assert "solves 0" in out


class TestRenderDashboard:
    def test_panel_contents(self):
        state = DashboardState(window_s=100.0)
        state.ingest_all(sample_records())
        out = render_dashboard(state)
        assert "workload=batch" in out
        assert "solves 10 (1 failed)" in out
        assert "p50 5.000 ms" in out
        assert "p99 10.000 ms" in out
        assert "cache hits" in out and "75.0%" in out
        assert "plan occupancy" in out and "25.0%" in out
        assert "optimality gap" in out
        assert "query latency" in out  # sparkline present

    def test_gauge_dash_when_unobserved(self):
        state = DashboardState()
        out = render_dashboard(state)
        assert "cache hits       -" in out


class TestEventsLine:
    def test_matches_top_once_numbers(self):
        # The acceptance contract: report --trace and top agree because
        # they share DashboardState + nearest_rank.
        records = sample_records()
        line = events_line(records)
        state = DashboardState(window_s=math.inf)
        state.ingest_all(records)
        snap = state.snapshot()
        assert f"p50={1e3 * snap['p50_s']:.3f}ms" in line
        assert f"p99={1e3 * snap['p99_s']:.3f}ms" in line
        assert "10 solves (1 failed)" in line
        assert "cache hit rate=0.75" in line
        assert "gap max=0.450" in line

    def test_empty_for_span_only_trace(self):
        records = [
            {"kind": "meta", "schema": 1},
            {"kind": "span", "path": "solve", "duration_s": 0.1},
        ]
        assert events_line(records) == ""


class TestFollowTrace:
    def test_yields_only_complete_lines(self):
        handle = io.StringIO('{"a": 1}\n{"b": 2}\n{"torn')
        lines = list(follow_trace(handle, poll_s=0.01, idle_limit=0.0))
        assert lines == ['{"a": 1}', '{"b": 2}']

    def test_torn_line_completes_on_next_read(self):
        class GrowingFile:
            def __init__(self):
                self.chunks = ['{"a"', ': 1}\n', ""]

            def read(self):
                return self.chunks.pop(0) if self.chunks else ""

        lines = list(
            follow_trace(GrowingFile(), poll_s=0.01, idle_limit=0.02)
        )
        assert lines == ['{"a": 1}']

    def test_blank_lines_skipped(self):
        handle = io.StringIO('{"a": 1}\n\n   \n{"b": 2}\n')
        lines = list(follow_trace(handle, poll_s=0.01, idle_limit=0.0))
        assert lines == ['{"a": 1}', '{"b": 2}']
