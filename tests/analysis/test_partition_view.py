"""Unit tests for :mod:`repro.analysis.partition_view`."""

import pytest

from repro.analysis.partition_view import (
    render_chain_partition,
    render_load_bars,
)


class TestChainPartitionView:
    def test_fixture_rendering(self, small_chain):
        text = render_chain_partition(small_chain, [1, 3], bound=9)
        assert "[ 0..1 | w=7 ]" in text
        assert "--(1)--" in text
        assert "[ 4 | w=6 ]" in text
        assert "bound K=9 (ok)" in text
        assert "bandwidth 3" in text

    def test_violation_flagged(self, small_chain):
        text = render_chain_partition(small_chain, [], bound=9)
        assert "VIOLATED" in text

    def test_no_bound(self, small_chain):
        text = render_chain_partition(small_chain, [1, 3])
        assert "bound" not in text
        assert "3 blocks" in text

    def test_wrapping(self):
        from repro.graphs.generators import uniform_chain

        chain = uniform_chain(40)
        text = render_chain_partition(
            chain, list(range(0, 39, 2)), max_width=60
        )
        assert all(len(line) <= 80 for line in text.splitlines())
        assert len(text.splitlines()) > 2


class TestLoadBars:
    def test_bars_scaled_to_bound(self, small_chain):
        text = render_load_bars(small_chain, [1, 3], bound=9, width=10)
        lines = text.splitlines()
        assert len(lines) == 4  # 3 blocks + bound note
        assert "block  0" in lines[0]
        # Block of weight 7 on bound 9: 8 of 10 cells filled.
        assert lines[0].count("#") == 8

    def test_bars_without_bound(self, small_chain):
        text = render_load_bars(small_chain, [1, 3], width=10)
        # Heaviest block fills the bar completely.
        assert "##########" in text
