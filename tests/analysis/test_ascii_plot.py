"""Unit tests for :mod:`repro.analysis.ascii_plot`."""

import pytest

from repro.analysis.ascii_plot import ascii_plot


class TestAsciiPlot:
    def test_basic_render(self):
        text = ascii_plot({"a": [(0, 0), (1, 1), (2, 4)]}, width=20, height=8)
        lines = text.splitlines()
        assert len(lines) == 8 + 2  # canvas + x line + legend
        assert "o=a" in lines[-1]
        assert "o" in text

    def test_title(self):
        text = ascii_plot({"s": [(1, 1)]}, title="My Plot")
        assert text.splitlines()[0] == "My Plot"

    def test_two_series_distinct_markers(self):
        text = ascii_plot(
            {"up": [(0, 0), (1, 1)], "down": [(0, 1), (1, 0)]},
            width=10, height=5,
        )
        assert "o=up" in text
        assert "x=down" in text
        assert "x" in text and "o" in text

    def test_log_axes(self):
        text = ascii_plot(
            {"s": [(1, 10), (10, 100), (100, 1000)]},
            log_x=True, log_y=True,
        )
        assert "1e+03" in text or "1000" in text

    def test_log_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ascii_plot({"s": [(0, 1)]}, log_x=True)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({})
        with pytest.raises(ValueError):
            ascii_plot({"s": []})

    def test_constant_series(self):
        # Degenerate spans must not divide by zero.
        text = ascii_plot({"s": [(1, 5), (2, 5)]})
        assert "o" in text

    def test_extreme_point_placement(self):
        text = ascii_plot({"s": [(0, 0), (10, 10)]}, width=11, height=5)
        rows = [line for line in text.splitlines() if "|" in line]
        # Max point top-right, min bottom-left.
        assert rows[0].rstrip().endswith("o")
        assert rows[-1].split("|")[1][0] == "o"
