"""Unit tests for the experiment drivers
(:mod:`repro.analysis.figure2`, :mod:`repro.analysis.complexity`,
:mod:`repro.analysis.sweeps`)."""

import math

import pytest

from repro.analysis.complexity import (
    fit_model,
    linear_average_case,
    runtime_comparison,
    temp_s_length_experiment,
)
from repro.analysis.figure2 import (
    figure2_sweep,
    figure2_weight_sweep,
    headline_claims,
)
from repro.analysis.sweeps import aggregate, sweep


class TestFigure2Sweep:
    def test_point_fields(self):
        points = figure2_sweep(ns=[200], ratios=[2.0, 8.0], repetitions=2)
        assert len(points) == 2
        for point in points:
            assert point.n == 200
            assert point.p > 0
            assert point.q >= 1.0
            assert point.n_log_n == pytest.approx(200 * math.log2(200))

    def test_deterministic(self):
        a = figure2_sweep(ns=[150], ratios=[4.0], repetitions=2)
        b = figure2_sweep(ns=[150], ratios=[4.0], repetitions=2)
        assert a[0].p == b[0].p
        assert a[0].q == b[0].q

    def test_prime_length_tracks_ratio(self):
        # Section 2.3.2: average prime length ~ 2K/(w1+w2) grows with K.
        points = figure2_sweep(ns=[500], ratios=[2.0, 16.0], repetitions=2)
        assert points[1].mean_prime_length > points[0].mean_prime_length

    def test_headline_claims(self):
        points = figure2_sweep(
            ns=[400], ratios=[1.2, 4.0, 16.0, 64.0, 190.0], repetitions=2
        )
        claims = headline_claims(points)
        assert 400 in claims
        assert claims[400]["max_p_log_q"] < claims[400]["n_log_n"]

    def test_weight_sweep(self):
        points = figure2_weight_sweep(300, [5.0, 50.0], ratio=4.0, repetitions=2)
        assert len(points) == 2
        assert points[0].w_max == 5.0
        assert all(p.p > 0 for p in points)


class TestComplexity:
    def test_fit_model_exact_linear(self):
        xs = [10, 20, 40, 80]
        ys = [3 * x + 5 for x in xs]
        fit = fit_model(xs, ys, "n")
        assert fit.a == pytest.approx(3.0)
        assert fit.b == pytest.approx(5.0)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.predict(100) == pytest.approx(305.0)

    def test_fit_model_nlogn(self):
        xs = [16, 64, 256]
        ys = [2 * x * math.log2(x) for x in xs]
        fit = fit_model(xs, ys, "nlogn")
        assert fit.a == pytest.approx(2.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_linear_average_case_prefers_linear(self):
        points, lin, nlogn = linear_average_case(
            [500, 1000, 2000, 4000], ratio=3.0, repetitions=2,
            measure_time=False,
        )
        assert len(points) == 4
        assert lin.r_squared > 0.999
        # q stays roughly constant at fixed ratio.
        qs = [pt.q for pt in points]
        assert max(qs) / min(qs) < 1.5

    def test_temp_s_experiment(self):
        points = temp_s_length_experiment([500], [2.0, 32.0], repetitions=2)
        assert len(points) == 2
        low_k, high_k = points
        # Queue grows with q, but stays near log2(q), not q.
        assert high_k.mean_temp_s_len > low_k.mean_temp_s_len
        assert high_k.mean_temp_s_len < high_k.q / 2

    def test_runtime_comparison_checks_agreement(self):
        from repro.baselines import bandwidth_min_deque
        from repro.core import bandwidth_min

        rows = runtime_comparison(
            {"a": bandwidth_min, "b": bandwidth_min_deque},
            ns=[300],
            ratio=4.0,
            repetitions=2,
        )
        assert rows[0]["n"] == 300
        assert rows[0]["a"] > 0
        assert "optimum" in rows[0]


class TestSweeps:
    def test_sweep_runs_cartesian(self):
        def measure(rng, x, y):
            return {"value": x * y + rng.random() * 0}

        rows = sweep(measure, {"x": [1, 2], "y": [3, 4]}, repetitions=2)
        assert len(rows) == 8
        assert {row["value"] for row in rows} == {3, 4, 6, 8}

    def test_sweep_deterministic_rng(self):
        def measure(rng, x):
            return {"value": rng.random()}

        a = sweep(measure, {"x": [1]}, repetitions=1)
        b = sweep(measure, {"x": [1]}, repetitions=1)
        assert a[0]["value"] == b[0]["value"]

    def test_aggregate(self):
        rows = [
            {"x": 1, "rep": 0, "v": 2.0},
            {"x": 1, "rep": 1, "v": 4.0},
            {"x": 2, "rep": 0, "v": 10.0},
        ]
        agg = aggregate(rows, ["x"])
        by_x = {row["x"]: row for row in agg}
        assert by_x[1]["v"] == 3.0
        assert by_x[2]["v"] == 10.0
