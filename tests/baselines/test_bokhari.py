"""Unit tests for the chains-on-chains family (:mod:`repro.baselines.bokhari`)."""

import random
from itertools import combinations

import pytest

from repro.baselines.bokhari import (
    bokhari_pipelined_dp,
    ccp_dp,
    ccp_probe,
    probe,
)
from repro.graphs.chain import Chain
from repro.graphs.generators import random_chain, uniform_chain


def brute_force_ccp(chain: Chain, m: int) -> float:
    best = None
    n = chain.num_tasks
    for r in range(min(m, n)):
        for subset in combinations(range(n - 1), r):
            w = max(chain.component_weights(subset))
            if best is None or w < best:
                best = w
    return best


class TestProbe:
    def test_feasible(self, small_chain):
        cuts = probe(small_chain, 3, 9)
        assert cuts is not None
        assert small_chain.is_feasible_cut(cuts, 9)
        assert len(cuts) + 1 <= 3

    def test_infeasible_too_few_processors(self, small_chain):
        assert probe(small_chain, 1, 9) is None

    def test_infeasible_below_max_weight(self, small_chain):
        assert probe(small_chain, 5, 5.9) is None

    def test_greedy_is_maximal(self):
        chain = uniform_chain(10)
        cuts = probe(chain, 4, 3)
        # Greedy packs 3 tasks per block: cuts after tasks 2, 5, 8.
        assert cuts == [2, 5, 8]


class TestCcpDp:
    def test_single_processor(self, small_chain):
        result = ccp_dp(small_chain, 1)
        assert result.num_blocks == 1
        assert result.bottleneck == 20

    def test_enough_processors_for_singletons(self, small_chain):
        result = ccp_dp(small_chain, 5)
        assert result.bottleneck == 6  # max single task

    def test_matches_brute_force(self):
        rng = random.Random(101)
        for _ in range(40):
            chain = random_chain(
                rng.randint(1, 10), rng, vertex_range=(1, 9), integer_weights=True
            )
            m = rng.randint(1, chain.num_tasks)
            assert ccp_dp(chain, m).bottleneck == pytest.approx(
                brute_force_ccp(chain, m)
            )

    def test_rejects_zero_processors(self, small_chain):
        with pytest.raises(ValueError):
            ccp_dp(small_chain, 0)

    def test_block_count_within_budget(self):
        rng = random.Random(102)
        for _ in range(20):
            chain = random_chain(rng.randint(1, 30), rng)
            m = rng.randint(1, chain.num_tasks)
            assert ccp_dp(chain, m).num_blocks <= m


class TestCcpProbe:
    def test_matches_dp_integer(self):
        rng = random.Random(103)
        for _ in range(40):
            chain = random_chain(
                rng.randint(1, 25), rng, vertex_range=(1, 9), integer_weights=True
            )
            m = rng.randint(1, chain.num_tasks)
            assert ccp_probe(chain, m).bottleneck == pytest.approx(
                ccp_dp(chain, m).bottleneck
            )

    def test_matches_dp_float(self):
        rng = random.Random(104)
        for _ in range(25):
            chain = random_chain(rng.randint(1, 25), rng)
            m = rng.randint(1, chain.num_tasks)
            assert ccp_probe(chain, m).bottleneck == pytest.approx(
                ccp_dp(chain, m).bottleneck, rel=1e-9
            )


class TestPipelinedDp:
    def test_single_block_no_comm(self, small_chain):
        result = bokhari_pipelined_dp(small_chain, 1)
        assert result.bottleneck == 20  # no boundary edges

    def test_may_prefer_fewer_blocks(self):
        # Heavy edges: splitting adds more communication than it saves.
        chain = Chain([2, 2, 2], [100, 100])
        result = bokhari_pipelined_dp(chain, 3)
        assert result.num_blocks == 1
        assert result.bottleneck == 6

    def test_splits_when_cheap(self):
        chain = Chain([10, 10, 10], [0.5, 0.5])
        result = bokhari_pipelined_dp(chain, 3)
        assert result.num_blocks == 3
        assert result.bottleneck == pytest.approx(11)

    def test_matches_brute_force(self):
        rng = random.Random(105)
        for _ in range(30):
            n = rng.randint(1, 9)
            chain = random_chain(n, rng, vertex_range=(1, 9),
                                 edge_range=(1, 9), integer_weights=True)
            m = rng.randint(1, n)

            def load(lo, hi):
                left = chain.beta[lo - 1] if lo > 0 else 0.0
                right = chain.beta[hi] if hi < n - 1 else 0.0
                return chain.segment_weight(lo, hi) + left + right

            best = None
            for r in range(min(m, n)):
                for subset in combinations(range(n - 1), r):
                    w = max(load(lo, hi) for lo, hi in chain.cut_components(subset))
                    if best is None or w < best:
                        best = w
            assert bokhari_pipelined_dp(chain, m).bottleneck == pytest.approx(best)
