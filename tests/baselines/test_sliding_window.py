"""Unit tests for the monotone-deque partitioner
(:mod:`repro.baselines.sliding_window`)."""

import random

import pytest

from repro.baselines.exact_dp import bandwidth_min_dp
from repro.baselines.sliding_window import bandwidth_min_deque
from repro.core.feasibility import InfeasibleBoundError
from repro.graphs.chain import Chain
from repro.graphs.generators import random_chain


class TestKnownInstances:
    def test_fixture(self, small_chain):
        result = bandwidth_min_deque(small_chain, 9)
        assert result.weight == 3
        assert result.is_feasible(9)

    def test_whole_fits(self, small_chain):
        assert bandwidth_min_deque(small_chain, 40).cut_indices == []

    def test_infeasible(self, small_chain):
        with pytest.raises(InfeasibleBoundError):
            bandwidth_min_deque(small_chain, 1)

    def test_two_tasks(self):
        chain = Chain([4, 4], [3])
        assert bandwidth_min_deque(chain, 4).cut_indices == [0]
        assert bandwidth_min_deque(chain, 8).cut_indices == []


class TestAgreement:
    def test_matches_dp_randomized(self):
        rng = random.Random(81)
        for _ in range(60):
            chain = random_chain(rng.randint(1, 70), rng)
            bound = rng.uniform(chain.max_vertex_weight(), chain.total_weight() + 1)
            a = bandwidth_min_deque(chain, bound)
            b = bandwidth_min_dp(chain, bound)
            assert a.weight == pytest.approx(b.weight)
            assert a.is_feasible(bound)

    def test_monotone_cost_in_bound(self):
        # A larger execution-time bound never increases the optimal cut
        # weight.
        rng = random.Random(82)
        chain = random_chain(50, rng)
        bounds = sorted(
            rng.uniform(chain.max_vertex_weight(), chain.total_weight())
            for _ in range(8)
        )
        costs = [bandwidth_min_deque(chain, b).weight for b in bounds]
        assert all(x >= y - 1e-9 for x, y in zip(costs, costs[1:]))
