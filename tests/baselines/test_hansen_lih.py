"""Unit tests for :mod:`repro.baselines.hansen_lih`."""

import random

import pytest

from repro.baselines.bokhari import ccp_dp
from repro.baselines.hansen_lih import ccp_hansen_lih
from repro.graphs.generators import random_chain, uniform_chain


class TestHansenLih:
    def test_single_processor(self, small_chain):
        result = ccp_hansen_lih(small_chain, 1)
        assert result.bottleneck == 20
        assert result.num_blocks == 1

    def test_uniform_balanced(self):
        chain = uniform_chain(12)
        result = ccp_hansen_lih(chain, 4)
        assert result.bottleneck == 3
        assert result.num_blocks == 4

    def test_rejects_zero_processors(self, small_chain):
        with pytest.raises(ValueError):
            ccp_hansen_lih(small_chain, 0)

    def test_matches_layered_dp(self):
        rng = random.Random(111)
        for _ in range(50):
            chain = random_chain(
                rng.randint(1, 30), rng, vertex_range=(1, 9), integer_weights=True
            )
            m = rng.randint(1, chain.num_tasks)
            a = ccp_hansen_lih(chain, m)
            b = ccp_dp(chain, m)
            assert a.bottleneck == pytest.approx(b.bottleneck)
            assert a.num_blocks <= m

    def test_matches_on_floats(self):
        rng = random.Random(112)
        for _ in range(30):
            chain = random_chain(rng.randint(1, 40), rng)
            m = rng.randint(1, chain.num_tasks)
            assert ccp_hansen_lih(chain, m).bottleneck == pytest.approx(
                ccp_dp(chain, m).bottleneck
            )

    def test_more_processors_never_worse(self):
        rng = random.Random(113)
        chain = random_chain(30, rng)
        values = [ccp_hansen_lih(chain, m).bottleneck for m in range(1, 12)]
        assert all(x >= y - 1e-9 for x, y in zip(values, values[1:]))
