"""Unit tests for the exact tree DP oracle (:mod:`repro.baselines.tree_dp`)."""

import random

import pytest

from repro.baselines.brute_force import enumerate_tree_optima
from repro.baselines.tree_dp import min_components_exact, min_cuts_exact
from repro.core.feasibility import InfeasibleBoundError
from repro.graphs.generators import random_tree
from repro.graphs.tree import Tree


class TestExactDP:
    def test_fixture(self, small_tree):
        assert min_cuts_exact(small_tree, 15) == 1
        assert min_components_exact(small_tree, 15) == 2

    def test_no_cut(self, small_tree):
        assert min_cuts_exact(small_tree, 28) == 0

    def test_all_singletons(self):
        tree = Tree([5, 5, 5], [(0, 1), (1, 2)])
        assert min_cuts_exact(tree, 5) == 2

    def test_single_vertex(self):
        assert min_cuts_exact(Tree([3.0], []), 4) == 0

    def test_infeasible(self, small_tree):
        with pytest.raises(InfeasibleBoundError):
            min_cuts_exact(small_tree, 2)

    def test_matches_brute_force(self):
        rng = random.Random(93)
        for _ in range(30):
            tree = random_tree(
                rng.randint(1, 12), rng, vertex_range=(1, 5), integer_weights=True
            )
            bound = float(
                rng.randint(
                    int(tree.max_vertex_weight()),
                    int(tree.total_vertex_weight()) + 1,
                )
            )
            oracle = enumerate_tree_optima(tree, bound)
            assert min_components_exact(tree, bound) == oracle.min_components

    def test_root_independent(self):
        rng = random.Random(94)
        tree = random_tree(10, rng, vertex_range=(1, 4), integer_weights=True)
        bound = 1.5 * tree.max_vertex_weight()
        counts = {min_cuts_exact(tree, bound, root=r) for r in range(10)}
        assert len(counts) == 1

    def test_state_guard(self):
        # A wide star with continuous weights and a generous bound makes
        # the reachable component-weight set explode combinatorially.
        rng = random.Random(95)
        leaves = [rng.uniform(1.0, 2.0) for _ in range(64)]
        star = Tree.star(0.0, leaves, [1.0] * len(leaves))
        with pytest.raises(ValueError, match="too large"):
            min_cuts_exact(star, 40.0)
