"""Unit tests for :mod:`repro.baselines.host_satellite`."""

import random

import pytest

from repro.baselines.host_satellite import (
    brute_force_host_satellite,
    host_satellite_min_bottleneck,
)
from repro.graphs.generators import random_tree
from repro.graphs.tree import Tree


class TestKnownInstances:
    def test_single_vertex(self):
        plan = host_satellite_min_bottleneck(Tree([5.0], []))
        assert plan.offloaded == set()
        assert plan.bottleneck == 5.0
        assert plan.num_satellites == 0

    def test_never_offload_when_comm_dominates(self):
        # Offloading the leaf costs edge 100 on both sides — keep it.
        tree = Tree([5, 5], [(0, 1)], [100])
        plan = host_satellite_min_bottleneck(tree)
        assert plan.offloaded == set()
        assert plan.bottleneck == 10

    def test_offload_cheap_heavy_subtree(self):
        # Leaf of weight 50 behind an edge of weight 1: offload.
        tree = Tree([5, 50], [(0, 1)], [1])
        plan = host_satellite_min_bottleneck(tree)
        assert plan.offloaded == {(0, 1)}
        assert plan.host_load == 6  # 5 + edge 1
        assert plan.satellite_loads == [51]
        assert plan.bottleneck == 51

    def test_balanced_split(self):
        # Star: two heavy leaves, light edges -> both offloaded.
        tree = Tree([2, 30, 30], [(0, 1), (0, 2)], [1, 1])
        plan = host_satellite_min_bottleneck(tree)
        assert plan.offloaded == {(0, 1), (0, 2)}
        assert plan.host_load == 4
        assert plan.bottleneck == 31

    def test_bottleneck_never_exceeds_total(self):
        tree = Tree([3, 4, 5], [(0, 1), (1, 2)], [2, 2])
        plan = host_satellite_min_bottleneck(tree)
        assert plan.bottleneck <= tree.total_vertex_weight()


class TestAgainstBruteForce:
    def test_randomized(self):
        rng = random.Random(141)
        for _ in range(50):
            tree = random_tree(
                rng.randint(1, 10), rng, vertex_range=(1, 9),
                edge_range=(1, 9), integer_weights=True,
            )
            fast = host_satellite_min_bottleneck(tree)
            exact = brute_force_host_satellite(tree)
            assert fast.bottleneck == pytest.approx(exact.bottleneck, rel=1e-6)

    def test_plan_is_consistent(self):
        rng = random.Random(142)
        for _ in range(30):
            tree = random_tree(rng.randint(2, 20), rng)
            plan = host_satellite_min_bottleneck(tree)
            # Host load + offloaded subtree weights - edges = total.
            subtree = tree.subtree_weights(plan.root)
            _order, parent = tree.post_order(plan.root)
            reconstructed = tree.total_vertex_weight()
            for u, v in plan.offloaded:
                child = v if parent[v] in (u,) else u
                reconstructed -= subtree[child]
                reconstructed += tree.edge_weight(u, v)
            assert plan.host_load == pytest.approx(reconstructed)
            assert len(plan.satellite_loads) == len(plan.offloaded)

    def test_brute_force_guard(self):
        tree = random_tree(30, 3)
        with pytest.raises(ValueError, match="limited"):
            brute_force_host_satellite(tree)
