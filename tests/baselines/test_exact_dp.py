"""Unit tests for the quadratic DP oracle (:mod:`repro.baselines.exact_dp`)."""

import random

import pytest

from repro.baselines.brute_force import chain_min_bandwidth
from repro.baselines.exact_dp import bandwidth_min_dp
from repro.core.feasibility import InfeasibleBoundError
from repro.graphs.chain import Chain
from repro.graphs.generators import random_chain


class TestKnownInstances:
    def test_fixture(self, small_chain):
        result = bandwidth_min_dp(small_chain, 9)
        assert result.weight == 3
        assert result.cut_indices == [1, 3]

    def test_whole_fits(self, small_chain):
        assert bandwidth_min_dp(small_chain, 20).cut_indices == []

    def test_single_task(self, single_task_chain):
        assert bandwidth_min_dp(single_task_chain, 5).weight == 0.0

    def test_infeasible(self, small_chain):
        with pytest.raises(InfeasibleBoundError):
            bandwidth_min_dp(small_chain, 4)

    def test_forced_singletons(self):
        chain = Chain([5, 5, 5], [2, 3])
        result = bandwidth_min_dp(chain, 5)
        assert result.cut_indices == [0, 1]


class TestAgainstBruteForce:
    def test_exhaustive_agreement(self):
        rng = random.Random(61)
        for _ in range(60):
            chain = random_chain(
                rng.randint(1, 12), rng, vertex_range=(1, 6),
                edge_range=(1, 9), integer_weights=True,
            )
            bound = float(
                rng.randint(
                    int(chain.max_vertex_weight()),
                    int(chain.total_weight()) + 1,
                )
            )
            dp = bandwidth_min_dp(chain, bound)
            oracle = chain_min_bandwidth(chain, bound)
            assert dp.weight == pytest.approx(oracle)
            assert dp.is_feasible(bound)

    def test_float_weights_feasible(self):
        rng = random.Random(62)
        for _ in range(30):
            chain = random_chain(rng.randint(1, 40), rng)
            bound = rng.uniform(chain.max_vertex_weight(), chain.total_weight())
            result = bandwidth_min_dp(chain, bound)
            assert result.is_feasible(bound)
            assert result.weight == pytest.approx(
                chain.cut_weight(result.cut_indices)
            )
