"""Unit tests for :mod:`repro.baselines.heterogeneous`."""

import random
from itertools import combinations

import pytest

from repro.baselines.bokhari import ccp_dp
from repro.baselines.heterogeneous import ccp_hetero_dp, ccp_hetero_probe
from repro.graphs.chain import Chain
from repro.graphs.generators import random_chain


def brute_force_hetero(chain: Chain, speeds):
    """Exhaustive optimum over cuts and in-order block placements."""
    n = chain.num_tasks
    m = len(speeds)
    best = None
    for r in range(min(m, n)):
        for subset in combinations(range(n - 1), r):
            blocks = chain.cut_components(subset)
            weights = [chain.segment_weight(lo, hi) for lo, hi in blocks]
            # In-order placement DP (blocks may skip slow processors).
            INF = float("inf")
            dp = [0.0] + [INF] * len(weights)
            for p in range(m):
                new = list(dp)
                for b in range(1, len(weights) + 1):
                    if dp[b - 1] < INF:
                        cand = max(dp[b - 1], weights[b - 1] / speeds[p])
                        if cand < new[b]:
                            new[b] = cand
                dp = new
            if dp[-1] < INF and (best is None or dp[-1] < best):
                best = dp[-1]
    return best


class TestHeteroDp:
    def test_homogeneous_reduces_to_ccp(self):
        rng = random.Random(151)
        for _ in range(20):
            chain = random_chain(rng.randint(1, 15), rng, integer_weights=True)
            m = rng.randint(1, chain.num_tasks)
            hetero = ccp_hetero_dp(chain, [1.0] * m)
            classic = ccp_dp(chain, m)
            assert hetero.bottleneck == pytest.approx(classic.bottleneck)

    def test_fast_processor_takes_more(self):
        chain = Chain([1, 1, 1, 1, 1, 1], [1] * 5)
        result = ccp_hetero_dp(chain, [1.0, 5.0])
        # Optimal: give the fast processor 5 tasks (time 1), slow 1.
        assert result.bottleneck == pytest.approx(1.0)

    def test_matches_brute_force(self):
        rng = random.Random(152)
        for _ in range(40):
            chain = random_chain(rng.randint(1, 9), rng, vertex_range=(1, 9),
                                 integer_weights=True)
            m = rng.randint(1, 4)
            speeds = [float(rng.randint(1, 4)) for _ in range(m)]
            result = ccp_hetero_dp(chain, speeds)
            oracle = brute_force_hetero(chain, speeds)
            assert result.bottleneck == pytest.approx(oracle)

    def test_rejects_bad_speeds(self, small_chain):
        with pytest.raises(ValueError):
            ccp_hetero_dp(small_chain, [])
        with pytest.raises(ValueError):
            ccp_hetero_dp(small_chain, [1.0, 0.0])


class TestHeteroProbe:
    def test_matches_dp(self):
        rng = random.Random(153)
        for _ in range(40):
            chain = random_chain(rng.randint(1, 20), rng)
            m = rng.randint(1, 6)
            speeds = [rng.uniform(0.5, 4.0) for _ in range(m)]
            probe = ccp_hetero_probe(chain, speeds)
            dp = ccp_hetero_dp(chain, speeds)
            assert probe.bottleneck == pytest.approx(dp.bottleneck, rel=1e-6)

    def test_single_processor(self, small_chain):
        result = ccp_hetero_probe(small_chain, [2.0])
        assert result.bottleneck == pytest.approx(10.0)  # 20 / 2
        assert result.num_blocks == 1
