"""Unit tests for the exhaustive oracles (:mod:`repro.baselines.brute_force`)."""

import pytest

from repro.baselines.brute_force import (
    all_feasible_chain_cuts,
    chain_min_bandwidth,
    chain_min_bottleneck,
    chain_min_components,
    enumerate_tree_optima,
)
from repro.graphs.chain import Chain
from repro.graphs.generators import random_chain


class TestChainOracles:
    def test_min_bandwidth_fixture(self, small_chain):
        assert chain_min_bandwidth(small_chain, 9) == 3

    def test_min_components_fixture(self, small_chain):
        assert chain_min_components(small_chain, 9) == 3
        assert chain_min_components(small_chain, 20) == 1

    def test_min_bottleneck_fixture(self, small_chain):
        assert chain_min_bottleneck(small_chain, 9) == 2
        assert chain_min_bottleneck(small_chain, 20) == 0.0

    def test_infeasible_returns_none(self):
        chain = Chain([9, 9], [1])
        assert chain_min_bandwidth(chain, 5) is None
        assert chain_min_components(chain, 5) is None

    def test_all_feasible_cuts(self, small_chain):
        cuts = all_feasible_chain_cuts(small_chain, 9)
        assert (1, 3) in cuts
        assert () not in cuts
        assert all(small_chain.is_feasible_cut(c, 9) for c in cuts)

    def test_size_guard(self):
        chain = random_chain(25, 0)
        with pytest.raises(ValueError, match="limited"):
            chain_min_bandwidth(chain, 1000)


class TestTreeOracle:
    def test_fixture_tree(self, small_tree):
        opt = enumerate_tree_optima(small_tree, 15)
        assert opt.feasible
        assert opt.min_bottleneck == 20
        assert opt.min_components == 2

    def test_no_cut_case(self, small_tree):
        opt = enumerate_tree_optima(small_tree, 28)
        assert opt.min_bandwidth == 0.0
        assert opt.min_bottleneck == 0.0
        assert opt.min_components == 1

    def test_infeasible(self, small_tree):
        opt = enumerate_tree_optima(small_tree, 6)
        assert not opt.feasible
        assert opt.min_bandwidth is None

    def test_best_cut_reported(self, small_tree):
        opt = enumerate_tree_optima(small_tree, 15)
        assert opt.best_bandwidth_cut is not None
        weight = sum(
            small_tree.edge_weight(u, v) for u, v in opt.best_bandwidth_cut
        )
        assert weight == opt.min_bandwidth
