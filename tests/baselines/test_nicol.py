"""Unit tests for the O(n log n) baseline (:mod:`repro.baselines.nicol`)."""

import random

import pytest

from repro.baselines.exact_dp import bandwidth_min_dp
from repro.baselines.nicol import bandwidth_min_nlogn
from repro.core.bandwidth import bandwidth_min
from repro.core.feasibility import InfeasibleBoundError
from repro.graphs.chain import Chain
from repro.graphs.generators import random_chain, uniform_chain


class TestKnownInstances:
    def test_fixture(self, small_chain):
        result = bandwidth_min_nlogn(small_chain, 9)
        assert result.weight == 3
        assert result.is_feasible(9)

    def test_whole_fits(self, small_chain):
        assert bandwidth_min_nlogn(small_chain, 25).weight == 0.0

    def test_infeasible(self, small_chain):
        with pytest.raises(InfeasibleBoundError):
            bandwidth_min_nlogn(small_chain, 2)

    def test_uniform(self):
        result = bandwidth_min_nlogn(uniform_chain(9), 3)
        assert len(result.cut_indices) == 2
        assert result.weight == 2


class TestAgreement:
    def test_matches_dp_randomized(self):
        rng = random.Random(71)
        for _ in range(50):
            chain = random_chain(rng.randint(1, 60), rng)
            bound = rng.uniform(chain.max_vertex_weight(), chain.total_weight() + 1)
            a = bandwidth_min_nlogn(chain, bound)
            b = bandwidth_min_dp(chain, bound)
            assert a.weight == pytest.approx(b.weight)
            assert a.is_feasible(bound)

    def test_matches_paper_algorithm(self):
        rng = random.Random(72)
        for _ in range(30):
            chain = random_chain(rng.randint(2, 100), rng)
            bound = rng.uniform(chain.max_vertex_weight(), chain.total_weight())
            assert bandwidth_min_nlogn(chain, bound).weight == pytest.approx(
                bandwidth_min(chain, bound).weight
            )

    def test_adversarial_heavy_window_shifts(self):
        # Long runs where the feasible window empties the heap.
        chain = Chain([9, 1, 1, 9, 1, 1, 9], [5, 1, 5, 5, 1, 5])
        for bound in (9, 10, 11, 12, 20, 31):
            a = bandwidth_min_nlogn(chain, bound)
            b = bandwidth_min_dp(chain, bound)
            assert a.weight == pytest.approx(b.weight)


class TestInstrumentation:
    """The heap counters are part of the observable contract: the
    empirical complexity gate fits them against the declared budget."""

    def test_declared_contract_counters(self):
        from repro.verify.contracts import get_contract

        contract = get_contract(bandwidth_min_nlogn)
        assert contract is not None
        assert contract.counters == ("heap_pushes", "heap_pops")

    def test_traced_heap_counters(self):
        from repro.observability import Tracer

        tracer = Tracer()
        chain = random_chain(30, rng=random.Random(5))
        bandwidth_min_nlogn(chain, 1.5 * chain.max_vertex_weight(), tracer=tracer)
        counts: dict = {}
        for record in tracer.records():
            for key, value in record["counts"].items():
                counts[key] = counts.get(key, 0) + value
        assert counts.get("heap_pushes", 0) > 0
        assert counts.get("heap_pops", 0) > 0
