"""Unit tests for :mod:`repro.baselines.kundu_misra`."""

import random

from repro.baselines.kundu_misra import processor_min_bottom_up
from repro.baselines.tree_dp import min_cuts_exact
from repro.core.processor_min import processor_min
from repro.graphs.generators import random_star, random_tree
from repro.graphs.tree import Tree


class TestBottomUpGreedy:
    def test_fixture(self, small_tree):
        result = processor_min_bottom_up(small_tree, 15)
        assert result.num_components == 2
        assert result.is_feasible(15)

    def test_single_vertex(self):
        assert processor_min_bottom_up(Tree([1.0], []), 2).num_components == 1

    def test_matches_algorithm_22(self):
        rng = random.Random(91)
        for _ in range(40):
            tree = random_tree(rng.randint(1, 40), rng)
            bound = rng.uniform(tree.max_vertex_weight(), tree.total_vertex_weight() + 1)
            a = processor_min(tree, bound).num_components
            b = processor_min_bottom_up(tree, bound).num_components
            assert a == b

    def test_matches_exact_dp(self):
        rng = random.Random(92)
        for _ in range(30):
            tree = random_tree(
                rng.randint(1, 14), rng, vertex_range=(1, 6), integer_weights=True
            )
            bound = float(
                rng.randint(
                    int(tree.max_vertex_weight()),
                    int(tree.total_vertex_weight()) + 1,
                )
            )
            greedy = processor_min_bottom_up(tree, bound)
            assert len(greedy.cut_edges) == min_cuts_exact(tree, bound)

    def test_star(self):
        star = random_star(10, 5, leaf_range=(1, 5))
        bound = 2.0 * star.max_vertex_weight()
        result = processor_min_bottom_up(star, bound)
        assert result.is_feasible(bound)
