"""Unit tests for Theorem 1 (:mod:`repro.baselines.star_knapsack`)."""

import random

import pytest

from repro.baselines.brute_force import enumerate_tree_optima
from repro.baselines.star_knapsack import (
    cut_to_knapsack_items,
    knapsack_01,
    knapsack_items_to_cut,
    knapsack_to_star,
    star_bandwidth_min,
)
from repro.graphs.tree import Tree


class TestKnapsack01:
    def test_classic_instance(self):
        sol = knapsack_01([2, 3, 4, 5], [3, 4, 5, 6], 5)
        assert sol.profit == 7  # items 0 and 1
        assert sorted(sol.items) == [0, 1]

    def test_empty(self):
        sol = knapsack_01([], [], 10)
        assert sol.items == ()
        assert sol.profit == 0.0

    def test_nothing_fits(self):
        sol = knapsack_01([10, 12], [100, 200], 5)
        assert sol.items == ()

    def test_everything_fits(self):
        sol = knapsack_01([1, 1, 1], [5, 6, 7], 10)
        assert sorted(sol.items) == [0, 1, 2]
        assert sol.profit == 18

    def test_zero_weight_items(self):
        sol = knapsack_01([0, 4], [9, 1], 3)
        assert 0 in sol.items

    def test_float_profits(self):
        sol = knapsack_01([2, 2], [1.5, 2.5], 2)
        assert sol.items == (1,)

    def test_rejects_fractional_weight(self):
        with pytest.raises(ValueError, match="integer"):
            knapsack_01([1.5], [1], 3)

    def test_rejects_fractional_capacity(self):
        with pytest.raises(ValueError, match="integer"):
            knapsack_01([1], [1], 2.5)

    def test_exhaustive_small(self):
        rng = random.Random(131)
        from itertools import combinations

        for _ in range(30):
            r = rng.randint(0, 8)
            weights = [rng.randint(0, 6) for _ in range(r)]
            profits = [rng.randint(0, 9) for _ in range(r)]
            cap = rng.randint(0, 12)
            best = 0.0
            for size in range(r + 1):
                for combo in combinations(range(r), size):
                    if sum(weights[i] for i in combo) <= cap:
                        best = max(best, float(sum(profits[i] for i in combo)))
            assert knapsack_01(weights, profits, cap).profit == best


class TestStarSolver:
    def test_fixture(self, star_tree):
        # Leaves (2,3,4,5,6 weight) with profits (10,20,30,40,50), K=9.
        cut, weight = star_bandwidth_min(star_tree, 9)
        oracle = enumerate_tree_optima(star_tree, 9)
        assert weight == pytest.approx(oracle.min_bandwidth)

    def test_everything_kept(self, star_tree):
        cut, weight = star_bandwidth_min(star_tree, 20)
        assert cut == set()
        assert weight == 0.0

    def test_matches_brute_force_random(self):
        rng = random.Random(132)
        for _ in range(30):
            r = rng.randint(1, 9)
            star = Tree.star(
                float(rng.randint(0, 3)),
                [float(rng.randint(1, 6)) for _ in range(r)],
                [float(rng.randint(1, 9)) for _ in range(r)],
            )
            bound = float(
                rng.randint(
                    int(star.max_vertex_weight()),
                    int(star.total_vertex_weight()) + 2,
                )
            )
            _cut, weight = star_bandwidth_min(star, bound)
            oracle = enumerate_tree_optima(star, bound)
            assert weight == pytest.approx(oracle.min_bandwidth)

    def test_rejects_non_star(self, small_tree):
        with pytest.raises(ValueError, match="not a star"):
            star_bandwidth_min(small_tree, 20)


class TestReduction:
    def test_construction(self):
        star = knapsack_to_star([2, 3], [7, 8])
        assert star.is_star()
        assert star.vertex_weight(0) == 0.0
        assert star.vertex_weight(1) == 2
        assert star.edge_weight(0, 2) == 8

    def test_round_trip(self):
        star = knapsack_to_star([2, 3, 4], [7, 8, 9])
        items = {0, 2}
        cut = knapsack_items_to_cut(star, items)
        assert cut_to_knapsack_items(star, cut) == items

    def test_theorem_equivalence(self):
        """A cut of weight sum(p) - P corresponds exactly to a chosen
        item set of profit P and weight within the capacity."""
        rng = random.Random(133)
        for _ in range(20):
            r = rng.randint(1, 8)
            weights = [rng.randint(1, 5) for _ in range(r)]
            profits = [rng.randint(1, 9) for _ in range(r)]
            # The star problem needs K >= max leaf weight (a cut leaf is
            # its own component); the equivalence holds on that domain.
            capacity = rng.randint(max(weights), 15 + max(weights))
            star = knapsack_to_star(weights, profits)
            sol = knapsack_01(weights, profits, capacity)
            cut = knapsack_items_to_cut(star, set(sol.items))
            cut_weight = sum(star.edge_weight(u, v) for u, v in cut)
            assert cut_weight == pytest.approx(sum(profits) - sol.profit)
            # The star solver reaches the same optimum.
            _best_cut, best_weight = star_bandwidth_min(star, float(capacity))
            assert best_weight == pytest.approx(cut_weight)
