"""Unit tests for the heuristic partitions (:mod:`repro.baselines.greedy`)."""

import random

import pytest

from repro.baselines.greedy import (
    equal_blocks_cut,
    first_fit_cut,
    random_feasible_cut,
)
from repro.core.bandwidth import bandwidth_min
from repro.core.feasibility import InfeasibleBoundError
from repro.graphs.chain import Chain
from repro.graphs.generators import random_chain, uniform_chain


class TestFirstFit:
    def test_fixture(self, small_chain):
        result = first_fit_cut(small_chain, 9)
        assert result.is_feasible(9)

    def test_packs_maximally(self):
        chain = uniform_chain(10)
        result = first_fit_cut(chain, 3)
        assert result.cut_indices == [2, 5, 8]

    def test_no_cut_when_fits(self, small_chain):
        assert first_fit_cut(small_chain, 20).cut_indices == []

    def test_infeasible(self, small_chain):
        with pytest.raises(InfeasibleBoundError):
            first_fit_cut(small_chain, 3)

    def test_never_cheaper_than_optimal(self):
        rng = random.Random(121)
        for _ in range(30):
            chain = random_chain(rng.randint(1, 60), rng)
            bound = rng.uniform(chain.max_vertex_weight(), chain.total_weight())
            greedy = first_fit_cut(chain, bound)
            optimal = bandwidth_min(chain, bound)
            assert greedy.weight >= optimal.weight - 1e-9


class TestEqualBlocks:
    def test_block_count(self, small_chain):
        result = equal_blocks_cut(small_chain, 3)
        assert result.num_components == 3

    def test_single_block(self, small_chain):
        assert equal_blocks_cut(small_chain, 1).cut_indices == []

    def test_max_blocks(self, small_chain):
        result = equal_blocks_cut(small_chain, 5)
        assert result.num_components == 5

    def test_rejects_too_many(self, small_chain):
        with pytest.raises(ValueError):
            equal_blocks_cut(small_chain, 6)

    def test_counts_nearly_equal(self):
        chain = uniform_chain(17)
        result = equal_blocks_cut(chain, 4)
        sizes = [hi - lo + 1 for lo, hi in result.blocks()]
        assert max(sizes) - min(sizes) <= 1


class TestRandomFeasible:
    def test_always_feasible(self):
        rng = random.Random(122)
        for _ in range(30):
            chain = random_chain(rng.randint(1, 50), rng)
            bound = rng.uniform(chain.max_vertex_weight(), chain.total_weight())
            result = random_feasible_cut(chain, bound, rng)
            assert result.is_feasible(bound)

    def test_deterministic_with_seed(self, medium_chain):
        bound = 3 * medium_chain.max_vertex_weight()
        a = random_feasible_cut(medium_chain, bound, random.Random(5))
        b = random_feasible_cut(medium_chain, bound, random.Random(5))
        assert a.cut_indices == b.cut_indices

    def test_no_cut_when_fits(self, small_chain):
        result = random_feasible_cut(small_chain, 25, random.Random(1))
        assert result.cut_indices == []
