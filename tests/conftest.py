"""Shared fixtures: canonical instances used across the test suite."""

from __future__ import annotations

import random

import pytest

from repro.graphs.chain import Chain
from repro.graphs.generators import random_chain, random_tree
from repro.graphs.tree import Tree


@pytest.fixture
def rng() -> random.Random:
    return random.Random(20260706)


@pytest.fixture
def small_chain() -> Chain:
    """5 tasks / 4 edges; used throughout with bound K = 9.

    alpha = [4, 3, 5, 2, 6], beta = [7, 1, 9, 2].  Critical subpaths
    under K=9: (0,1,2)=12, (1,2,3)=10, (2,3,4)=13; primes are all three.
    Optimal bandwidth cut: edges {1, 3} with weight 3.
    """
    return Chain([4, 3, 5, 2, 6], [7, 1, 9, 2])


@pytest.fixture
def single_task_chain() -> Chain:
    return Chain([5.0], [])


@pytest.fixture
def small_tree() -> Tree:
    """A 7-vertex tree: 0 is the root of two branches.

          0(3)
         /    \\
       1(4)   2(5)
       /  \\     \\
     3(2) 4(6)  5(1)
                  \\
                  6(7)

    Edge weights chosen distinct for unambiguous bottleneck tests.
    """
    return Tree(
        [3, 4, 5, 2, 6, 1, 7],
        [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (5, 6)],
        [10, 20, 30, 40, 50, 60],
    )


@pytest.fixture
def star_tree() -> Tree:
    """Star with centre weight 0, five leaves (Theorem 1 shape)."""
    return Tree.star(0.0, [2, 3, 4, 5, 6], [10, 20, 30, 40, 50])


@pytest.fixture
def medium_chain(rng) -> Chain:
    return random_chain(200, rng, vertex_range=(1, 10), edge_range=(1, 100))


@pytest.fixture
def medium_tree(rng) -> Tree:
    return random_tree(150, rng, vertex_range=(1, 10), edge_range=(1, 100))
