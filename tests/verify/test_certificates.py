"""Unit tests for :mod:`repro.verify.certificates`.

Every checker must accept a genuinely optimal solution and reject each
kind of corruption with a :class:`Violation` naming the paper invariant
it breaks.
"""

import pytest

from repro.core.bandwidth import bandwidth_min
from repro.core.bottleneck import bottleneck_min
from repro.core.feasibility import PartitioningError
from repro.graphs.chain import Chain
from repro.verify import (
    CertificateReport,
    VerificationError,
    Violation,
    check_chain_partition,
    check_pareto_frontier,
    check_prime_cover,
    check_tree_cut,
)
from repro.graphs.tree import Tree


@pytest.fixture
def chain():
    # Blocks of weight > 6 force real cuts; beta chosen non-uniform so
    # the optimal cut is unique.
    return Chain([4.0, 3.0, 5.0, 2.0, 6.0], [1.0, 9.0, 2.0, 3.0])


@pytest.fixture
def tree():
    #      0
    #     / \
    #    1   2
    #       / \
    #      3   4
    return Tree(
        [5.0, 4.0, 3.0, 6.0, 2.0],
        [(0, 1), (0, 2), (2, 3), (2, 4)],
        [2.0, 7.0, 1.0, 4.0],
    )


class TestCheckChainPartition:
    def test_valid_cut_passes(self, chain):
        result = bandwidth_min(chain, 7.0)
        report = check_chain_partition(
            chain, result.cut_indices, 7.0, result.weight
        )
        assert report.ok
        assert report.checks >= 3

    def test_overloaded_block_rejected(self, chain):
        # No cuts at all: the whole chain (weight 20) is one block.
        report = check_chain_partition(chain, [], 7.0)
        assert not report.ok
        codes = [v.code for v in report.violations]
        assert "chain.load_bound" in codes
        violation = report.violations[0]
        assert "execution-time bound" in violation.invariant
        assert "K" in violation.invariant

    def test_duplicate_cut_edges_rejected(self, chain):
        report = check_chain_partition(chain, [1, 1, 3], 7.0)
        assert any(
            v.code == "chain.duplicate_cut_edges" for v in report.violations
        )

    def test_out_of_range_edge_rejected(self, chain):
        report = check_chain_partition(chain, [99], 7.0)
        assert [v.code for v in report.violations] == [
            "chain.cut_edge_out_of_range"
        ]

    def test_wrong_claimed_weight_rejected(self, chain):
        result = bandwidth_min(chain, 7.0)
        report = check_chain_partition(
            chain, result.cut_indices, 7.0, result.weight + 1.0
        )
        assert any(
            v.code == "chain.bandwidth_mismatch" for v in report.violations
        )

    def test_exactly_tight_block_accepted(self):
        # A block summing exactly to K must not be flagged, even when
        # prefix-difference arithmetic lands a few ulps above it.
        alpha = [0.1] * 7 + [9.871130670353832]
        chain = Chain(alpha, [1.0] * 7)
        report = check_chain_partition(chain, [6], max(alpha))
        assert report.ok, [v.message for v in report.violations]


class TestCheckPrimeCover:
    def test_optimal_cut_covers_all_primes(self, chain):
        result = bandwidth_min(chain, 7.0)
        report = check_prime_cover(
            chain, result.cut_indices, 7.0, require_covered=True
        )
        assert report.ok

    def test_uncovered_prime_rejected(self, chain):
        report = check_prime_cover(chain, [], 7.0)
        assert not report.ok
        violation = report.violations[0]
        assert violation.code == "chain.prime_uncovered"
        assert "prime" in violation.invariant
        assert "Section 2.3" in violation.invariant

    def test_uncovered_cut_edge_flagged_only_when_required(self, chain):
        result = bandwidth_min(chain, 20.0)  # no primes at K=20
        cut = [0]  # gratuitous edge covered by no prime subpath
        assert check_prime_cover(chain, cut, 20.0).ok
        report = check_prime_cover(chain, cut, 20.0, require_covered=True)
        assert [v.code for v in report.violations] == [
            "chain.uncovered_cut_edge"
        ]
        assert result.cut_indices == []

    def test_infeasible_bound_reported_not_raised(self, chain):
        report = check_prime_cover(chain, [], 1.0)
        assert [v.code for v in report.violations] == ["chain.infeasible_bound"]


class TestCheckTreeCut:
    def test_valid_cut_passes(self, tree):
        result = bottleneck_min(tree, 9.0)
        report = check_tree_cut(
            tree, result.cut_edges, 9.0, claimed_bottleneck=result.bottleneck
        )
        assert report.ok

    def test_unknown_edge_rejected(self, tree):
        report = check_tree_cut(tree, [(1, 4)], 9.0)
        assert [v.code for v in report.violations] == ["tree.cut_edge_missing"]

    def test_edge_direction_normalized(self, tree):
        result = bottleneck_min(tree, 9.0)
        flipped = [(v, u) for u, v in result.cut_edges]
        assert check_tree_cut(tree, flipped, 9.0).ok

    def test_overweight_component_rejected(self, tree):
        report = check_tree_cut(tree, [], 9.0)  # total weight 20 > 9
        assert any(v.code == "tree.load_bound" for v in report.violations)
        assert "execution-time bound" in report.violations[0].invariant

    def test_wrong_bottleneck_rejected(self, tree):
        result = bottleneck_min(tree, 9.0)
        report = check_tree_cut(
            tree,
            result.cut_edges,
            9.0,
            claimed_bottleneck=result.bottleneck + 0.5,
        )
        assert any(
            v.code == "tree.bottleneck_mismatch" for v in report.violations
        )

    def test_wrong_bandwidth_rejected(self, tree):
        result = bottleneck_min(tree, 9.0)
        actual = sum(tree.edge_weight(u, v) for u, v in result.cut_edges)
        report = check_tree_cut(
            tree, result.cut_edges, 9.0, claimed_bandwidth=actual * 2 + 1
        )
        assert any(
            v.code == "tree.bandwidth_mismatch" for v in report.violations
        )


class TestCheckParetoFrontier:
    GOOD = [
        {"processors": 1, "bound": 20.0, "bandwidth": 0.0},
        {"processors": 2, "bound": 11.0, "bandwidth": 2.0},
        {"processors": 3, "bound": 7.0, "bandwidth": 5.0},
    ]

    def test_monotone_frontier_passes(self):
        assert check_pareto_frontier(self.GOOD).ok

    def test_bound_increase_rejected(self):
        rows = [dict(r) for r in self.GOOD]
        rows[2]["bound"] = 15.0
        report = check_pareto_frontier(rows)
        assert any(v.code == "pareto.bound_increased" for v in report.violations)

    def test_processors_must_increase(self):
        rows = [dict(r) for r in self.GOOD]
        rows[1]["processors"] = 1
        report = check_pareto_frontier(rows)
        assert any(
            v.code == "pareto.processors_not_increasing"
            for v in report.violations
        )

    def test_bandwidth_decrease_rejected_for_chains(self):
        rows = [dict(r) for r in self.GOOD]
        rows[2]["bandwidth"] = 1.0
        report = check_pareto_frontier(rows)
        assert any(
            v.code == "pareto.bandwidth_decreased" for v in report.violations
        )

    def test_bandwidth_ignored_for_trees(self):
        rows = [dict(r) for r in self.GOOD]
        rows[2]["bandwidth"] = 1.0
        assert check_pareto_frontier(rows, check_bandwidth=False).ok


class TestReportAndError:
    def test_raise_if_failed_names_invariants(self, chain):
        report = check_chain_partition(chain, [], 7.0)
        with pytest.raises(VerificationError) as exc:
            report.raise_if_failed()
        message = str(exc.value)
        assert "chain.load_bound" in message
        assert "execution-time bound" in message
        assert exc.value.report is report

    def test_verification_error_is_partitioning_error(self):
        assert issubclass(VerificationError, PartitioningError)

    def test_passing_report_returned(self, chain):
        result = bandwidth_min(chain, 7.0)
        report = check_chain_partition(chain, result.cut_indices, 7.0)
        assert report.raise_if_failed() is report

    def test_violation_as_dict_round_trip(self):
        violation = Violation("x.y", "inv", "msg", {"k": 1})
        record = violation.as_dict()
        assert record == {
            "code": "x.y",
            "invariant": "inv",
            "message": "msg",
            "context": {"k": 1},
        }

    def test_report_repr_counts(self):
        report = CertificateReport("subject")
        assert "ok" in repr(report)
        report.add("c", "i", "m")
        assert "1 violation" in repr(report)
