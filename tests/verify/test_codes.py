"""Consistency tests for :mod:`repro.verify.codes` — the rule registry.

The satellite contract: every registered REPROxxx code must be (a)
documented in ``docs/verification.md`` and (b) exercised by at least
one test under ``tests/``.  With the registry as the single source of
truth, adding a rule without docs or coverage fails here instead of
silently shipping.
"""

import re
from pathlib import Path

from repro.verify.codes import REGISTRY, RuleSpec, all_codes, messages_for

REPO = Path(__file__).resolve().parents[2]
DOCS = REPO / "docs" / "verification.md"
TESTS = REPO / "tests"

#: The analyzer modules allowed to own rules, and the dynamic
#: certifiers allowed to back them.
ANALYZERS = {
    "repro.verify.lint",
    "repro.verify.flow",
    "repro.verify.empirical",
    "repro.verify.contracts",
    "repro.verify.concurrency",
    "repro.verify.hotpath",
    "repro.verify.faultflow",
}
CERTIFIERS = {
    "",
    "repro.verify.empirical",
    "repro.verify.races",
    "repro.verify.allocs",
    "repro.verify.faults",
}


def test_codes_are_well_formed():
    for code, spec in REGISTRY.items():
        assert re.fullmatch(r"REPRO\d{3}", code), code
        assert isinstance(spec, RuleSpec)
        assert spec.message.strip(), code
        assert spec.module in ANALYZERS, (code, spec.module)
        assert spec.scope in ("line", "loop"), (code, spec.scope)
        assert spec.certifier in CERTIFIERS, (code, spec.certifier)


def test_codes_are_contiguous_from_001():
    numbers = sorted(int(code[5:]) for code in REGISTRY)
    assert numbers == list(range(1, len(REGISTRY) + 1))


def test_all_codes_is_sorted_and_complete():
    assert list(all_codes()) == sorted(REGISTRY)


def test_messages_for_partitions_the_registry():
    seen = {}
    for module in ANALYZERS:
        for code in messages_for(module):
            assert code not in seen, f"{code} owned by both {seen[code]} and {module}"
            seen[code] = module
    assert set(seen) == set(REGISTRY)


def test_analyzer_tables_derive_from_registry():
    from repro.verify.concurrency import CONCURRENCY_RULES
    from repro.verify.contracts import CONTRACT_RULES
    from repro.verify.empirical import EMPIRICAL_RULES
    from repro.verify.faultflow import FAULTFLOW_RULES
    from repro.verify.flow import FLOW_RULES
    from repro.verify.hotpath import HOTPATH_RULES
    from repro.verify.lint import RULES

    assert RULES == messages_for("repro.verify.lint")
    assert FLOW_RULES == messages_for("repro.verify.flow")
    assert EMPIRICAL_RULES == messages_for("repro.verify.empirical")
    assert CONTRACT_RULES == messages_for("repro.verify.contracts")
    assert CONCURRENCY_RULES == messages_for("repro.verify.concurrency")
    assert HOTPATH_RULES == messages_for("repro.verify.hotpath")
    assert FAULTFLOW_RULES == messages_for("repro.verify.faultflow")


def test_loop_scope_matches_the_loop_scoped_rule_set():
    from repro.verify.hotpath import LOOP_SCOPED_RULES

    loop_scoped = {c for c, spec in REGISTRY.items() if spec.scope == "loop"}
    assert loop_scoped == set(LOOP_SCOPED_RULES)


def test_every_code_is_documented():
    text = DOCS.read_text(encoding="utf-8")
    missing = [code for code in REGISTRY if code not in text]
    assert not missing, f"codes absent from docs/verification.md: {missing}"


def test_every_code_is_exercised_by_a_test():
    corpus = ""
    for path in sorted(TESTS.rglob("test_*.py")):
        if path.name == "test_codes.py":
            continue  # this file mentions every code by construction
        corpus += path.read_text(encoding="utf-8")
    missing = [code for code in REGISTRY if code not in corpus]
    assert not missing, f"codes never exercised by any test: {missing}"
