"""Tests for :mod:`repro.verify.faults` — the fault-injection certifier.

The dynamic half of the fault-surface pass (REPRO020/REPRO023 carry
``certifier="repro.verify.faults"`` in the registry): monkeypatch one
instrumented acquire/IO point at a time to raise, then certify that
locks are released, sinks are closed or resumable, and the canonical
query re-solves bit-identically.  The acceptance criterion — at least
10 distinct injected sites — is asserted by :func:`certify_all` and
re-asserted here.
"""

import threading

import pytest

from repro.verify.faults import (
    _CANONICAL_BOUND,
    FaultInjectionError,
    FaultInjectionHarness,
    InjectedFault,
    _canonical_chain,
    _lock_released,
    certify_all,
    certify_batch_query_fault,
    certify_hub_subscriber_fault,
    certify_sink_torn_write,
    certify_structure_compute_fault,
    certify_tracer_span_fault,
)


class TestExceptionTaxonomy:
    def test_injected_fault_is_a_plain_exception(self):
        from repro.core.feasibility import PartitioningError

        assert issubclass(InjectedFault, Exception)
        assert not issubclass(InjectedFault, PartitioningError)

    def test_certification_failures_are_assertion_errors(self):
        assert issubclass(FaultInjectionError, AssertionError)


class TestLockProbe:
    def test_free_lock_reports_released(self):
        assert _lock_released(threading.Lock())
        assert _lock_released(threading.RLock())

    def test_held_lock_reports_held(self):
        lock = threading.Lock()
        lock.acquire()
        try:
            assert not _lock_released(lock, timeout=0.2)
        finally:
            lock.release()

    def test_rlock_held_by_this_thread_reports_held(self):
        """The probe runs from another thread on purpose: a same-thread
        ``RLock.acquire`` would succeed reentrantly and lie."""
        lock = threading.RLock()
        with lock:
            assert not _lock_released(lock, timeout=0.2)
        assert _lock_released(lock)


class TestCanonicalQuery:
    def test_chain_is_deterministic(self):
        a, b = _canonical_chain(), _canonical_chain()
        assert list(a.alpha) == list(b.alpha)
        assert list(a.beta) == list(b.beta)
        assert len(a.alpha) == 60

    def test_canonical_query_is_feasible(self):
        from repro.engine import PartitionEngine

        result = PartitionEngine().solve(_canonical_chain(), _CANONICAL_BOUND)
        assert result.weight <= _CANONICAL_BOUND


class TestInjectPrimitive:
    class _Victim:
        calls = 0

        @staticmethod
        def work(x):
            TestInjectPrimitive._Victim.calls += 1
            return x * 2

    def test_fail_on_call_must_be_positive(self):
        with pytest.raises(ValueError):
            FaultInjectionHarness(fail_on_call=0)

    def test_injection_raises_then_restores(self):
        harness = FaultInjectionHarness(backend="python")
        victim = self._Victim
        original = victim.work
        with harness.inject(victim, "work") as counter:
            with pytest.raises(InjectedFault):
                victim.work(3)
            assert victim.work(3) == 6  # only the first call raises
        assert victim.work is original
        assert counter["calls"] == 2
        assert harness.injected_sites[-1].endswith(".work")

    def test_unreached_site_is_a_certification_failure(self):
        harness = FaultInjectionHarness(backend="python")
        with pytest.raises(FaultInjectionError, match="never reached"):
            with harness.inject(self._Victim, "work"):
                pass  # never calls the patched target

    def test_restores_even_when_the_body_raises(self):
        harness = FaultInjectionHarness(backend="python")
        original = self._Victim.work
        with pytest.raises(RuntimeError):
            with harness.inject(self._Victim, "work"):
                raise RuntimeError("scenario bug")
        assert self._Victim.work is original

    def test_calls_tuple_selects_ordinals(self):
        harness = FaultInjectionHarness(backend="python")
        victim = self._Victim
        with harness.inject(victim, "work", calls=(2,)):
            assert victim.work(1) == 2
            with pytest.raises(InjectedFault):
                victim.work(1)
            assert victim.work(1) == 2

    def test_wrap_replaces_the_raise(self):
        harness = FaultInjectionHarness(backend="python")

        def halved(real, call, x):
            return real(x) // 2

        with harness.inject(self._Victim, "work", wrap=halved):
            assert self._Victim.work(5) == 5


class TestScenarios:
    """Spot-check individual scenarios; certify_all covers the rest."""

    def test_structure_fault_recovers(self):
        harness = FaultInjectionHarness()
        summary = certify_structure_compute_fault(harness)
        assert summary["recovered"] is True
        assert len(harness.injected_sites) == 1

    def test_batch_query_fault_isolates_one_query(self):
        harness = FaultInjectionHarness()
        summary = certify_batch_query_fault(harness)
        assert summary["errored_query"] == 1
        assert summary["recovered"] is True

    def test_hub_subscriber_fault_drops_and_records(self):
        harness = FaultInjectionHarness()
        summary = certify_hub_subscriber_fault(harness)
        assert summary["dropped"] is True
        assert "TelemetrySubscriber.emit" in harness.injected_sites

    def test_sink_torn_write_resumes(self, tmp_path):
        harness = FaultInjectionHarness()
        summary = certify_sink_torn_write(
            harness, sink_path=str(tmp_path / "torn.jsonl")
        )
        assert summary["site"] == "StreamingJsonlSink._fh.write"

    def test_tracer_span_fault_unwinds(self):
        harness = FaultInjectionHarness()
        summary = certify_tracer_span_fault(harness)
        assert "Span.body" in harness.injected_sites
        assert summary["spans_closed"] is True


class TestCertifyAll:
    def test_all_scenarios_pass_with_ten_distinct_sites(self, tmp_path):
        harness = FaultInjectionHarness()
        summary = certify_all(harness, sink_dir=str(tmp_path))
        assert len(summary["sites"]) >= 10
        # Every scenario contributed a summary.
        expected = {
            "structure", "sweep", "plan_compile", "batch_query",
            "hub_subscriber", "sink_torn_write", "sink_flush",
            "sink_init", "hub_close", "tracer_span", "traced_solve",
            "metrics_observe", "sites",
        }
        assert set(summary) == expected

    def test_python_backend_also_certifies(self, tmp_path):
        harness = FaultInjectionHarness(backend="python")
        summary = certify_all(harness, sink_dir=str(tmp_path))
        assert len(summary["sites"]) >= 10
