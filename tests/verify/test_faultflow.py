"""Tests for :mod:`repro.verify.faultflow`: fault-surface analysis.

Acceptance criteria from the issue: each rule (REPRO020 resource
lifecycle, REPRO021 broad-except swallows, REPRO022 exit-code contract,
REPRO023 determinism taint, REPRO024 silent-drop handlers) gets a
rule x construct golden matrix, pragmas suppress findings on their
line, the exit-code table in ``docs/usage.md`` is docs-checked against
:data:`repro.exitcodes.EXIT_CODES` exactly like the rule registry, and
the analyzer must run clean over the repo's own ``src/`` tree after the
remediation.
"""

import re
import textwrap
from pathlib import Path

import pytest

from repro.exitcodes import (
    EXIT_CODES,
    EXIT_CONSTANT_NAMES,
    EXIT_FAILURE,
    EXIT_OK,
    EXIT_USAGE,
    EXIT_VERIFICATION,
)
from repro.verify.faultflow import (
    FAULTFLOW_RULES,
    check_faultflow,
    faultflow_check_source,
    main,
)

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"
USAGE = REPO / "docs" / "usage.md"


def dedent(source: str) -> str:
    return textwrap.dedent(source)


def codes(source: str, path: str = "example.py") -> list:
    return [
        f.code for f in faultflow_check_source(dedent(source), Path(path))
    ]


def findings(source: str, path: str = "example.py") -> list:
    return faultflow_check_source(dedent(source), Path(path))


# ----------------------------------------------------------------------
# The exit-code table itself
# ----------------------------------------------------------------------


class TestExitCodeTable:
    def test_table_values(self):
        assert EXIT_CODES == {
            "OK": 0, "FAILURE": 1, "USAGE": 2, "VERIFICATION": 3
        }
        assert (EXIT_OK, EXIT_FAILURE, EXIT_USAGE, EXIT_VERIFICATION) == (
            0, 1, 2, 3
        )

    def test_constant_names_derive_from_table(self):
        assert EXIT_CONSTANT_NAMES == {
            "EXIT_" + name for name in EXIT_CODES
        }

    def test_every_code_is_documented_in_usage_md(self):
        """docs/usage.md's Exit codes table must match the registry —
        the same docs-check discipline as the REPROxxx registry."""
        text = USAGE.read_text(encoding="utf-8")
        assert "## Exit codes" in text
        for name, value in EXIT_CODES.items():
            row = re.search(
                rf"\|\s*`{name}`\s*\|\s*(\d+)\s*\|", text
            )
            assert row is not None, f"{name} missing from docs/usage.md"
            assert int(row.group(1)) == value, (name, row.group(1))

    def test_docs_table_has_no_unregistered_rows(self):
        text = USAGE.read_text(encoding="utf-8")
        section = text.split("## Exit codes", 1)[1].split("\n## ", 1)[0]
        rows = re.findall(r"\|\s*`(\w+)`\s*\|\s*\d+\s*\|", section)
        assert rows, "the Exit codes table is empty"
        assert set(rows) == set(EXIT_CODES)


# ----------------------------------------------------------------------
# REPRO020 — resource lifecycle
# ----------------------------------------------------------------------


class TestResourceLifecycle:
    def test_bare_open_with_raise_capable_use_is_flagged(self):
        source = """
            def load(path):
                fh = open(path)
                data = fh.read()
                fh.close()
                return data
        """
        assert codes(source) == ["REPRO020"]

    def test_with_statement_is_the_goal_state(self):
        source = """
            def load(path):
                with open(path) as fh:
                    return fh.read()
        """
        assert codes(source) == []

    def test_try_finally_release_is_accepted(self):
        source = """
            def load(path):
                fh = open(path)
                try:
                    return fh.read()
                finally:
                    fh.close()
        """
        assert codes(source) == []

    def test_immediate_release_is_accepted(self):
        source = """
            def touch(path):
                fh = open(path, "w")
                fh.close()
        """
        assert codes(source) == []

    def test_ownership_transfer_via_return_is_accepted(self):
        assert codes("""
            def opener(path):
                return open(path)
        """) == []
        assert codes("""
            def opener(path):
                fh = open(path)
                return fh
        """) == []

    def test_deferred_with_over_the_handle_is_accepted(self):
        source = """
            def load(path):
                fh = open(path)
                with fh:
                    return fh.read()
        """
        assert codes(source) == []

    def test_acquire_nested_in_a_call_argument_is_flagged(self):
        source = """
            def load(path, process):
                return process(open(path))
        """
        assert codes(source) == ["REPRO020"]

    def test_pool_and_socket_constructors_are_acquires(self):
        source = """
            def fan_out(jobs):
                pool = ProcessPoolExecutor(max_workers=4)
                results = list(pool.map(work, jobs))
                pool.shutdown()
                return results
        """
        assert codes(source) == ["REPRO020"]
        assert codes("""
            def connect(host):
                sock = socket.socket()
                sock.connect(host)
                sock.close()
        """) == ["REPRO020"]

    def test_lock_acquire_needs_try_finally(self):
        flagged = """
            def update(self, value):
                self._lock.acquire()
                self.value = compute(value)
                self._lock.release()
        """
        assert codes(flagged) == ["REPRO020"]
        accepted = """
            def update(self, value):
                self._lock.acquire()
                try:
                    self.value = compute(value)
                finally:
                    self._lock.release()
        """
        assert codes(accepted) == []

    def test_self_attr_acquire_with_class_release_is_accepted(self):
        source = """
            class Sink:
                def __init__(self, path):
                    self.path = path
                    self._fh = open(path, "w")

                def close(self):
                    self._fh.close()
        """
        assert codes(source) == []

    def test_self_attr_acquire_followed_by_raise_capable_code_is_flagged(self):
        source = """
            class Sink:
                def __init__(self, path):
                    self._fh = open(path, "w")
                    self._fh.write(render_header())

                def close(self):
                    self._fh.close()
        """
        assert codes(source) == ["REPRO020"]

    def test_self_attr_acquire_without_any_release_is_flagged(self):
        source = """
            class Sink:
                def __init__(self, path):
                    self._fh = open(path, "w")
        """
        assert codes(source) == ["REPRO020"]

    def test_guard_try_calling_own_release_method_is_accepted(self):
        """The remediation shape used by StreamingJsonlSink.__init__."""
        source = """
            class Sink:
                def __init__(self, path):
                    self._fh = open(path, "w")
                    try:
                        self._fh.write(render_header())
                    except BaseException:
                        self.close()
                        raise

                def close(self):
                    self._fh.close()
        """
        assert codes(source) == []

    def test_acquire_inside_guarded_try_is_protected(self):
        source = """
            def load(path):
                try:
                    fh = open(path)
                    return fh.read()
                finally:
                    cleanup()
        """
        assert codes(source) == []

    def test_async_functions_are_scanned_too(self):
        source = """
            async def load(path):
                fh = open(path)
                data = fh.read()
                fh.close()
                return data
        """
        assert codes(source) == ["REPRO020"]

    def test_assert_between_acquire_and_release_is_raise_capable(self):
        source = """
            def load(path, expected):
                fh = open(path)
                assert expected, "missing expectation"
                fh.close()
        """
        assert codes(source) == ["REPRO020"]

    def test_async_with_over_the_handle_is_accepted(self):
        source = """
            async def load(path):
                fh = open(path)
                async with fh:
                    return await use(fh)
        """
        assert codes(source) == []

    def test_async_with_item_acquire_is_the_goal_state(self):
        source = """
            async def load(path):
                async with open(path) as fh:
                    return await use(fh)
        """
        assert codes(source) == []

    def test_handle_consumed_as_a_with_call_argument_is_accepted(self):
        source = """
            def load(path):
                fh = open(path)
                with closing(fh):
                    return fh.read()
        """
        assert codes(source) == []

    def test_guarded_acquire_inside_a_while_body_is_accepted(self):
        source = """
            def drain(pending):
                while pending:
                    fh = open(pending.pop())
                    try:
                        consume(fh)
                    finally:
                        fh.close()
        """
        assert codes(source) == []

    def test_leak_in_a_for_else_block_is_flagged(self):
        source = """
            def scan(paths):
                for path in paths:
                    check(path)
                else:
                    fh = open(paths[0])
                    consume(fh)
                    fh.close()
        """
        assert codes(source) == ["REPRO020"]

    def test_acquire_in_a_loop_header_is_flagged(self):
        source = """
            def lines(path):
                for line in open(path):
                    print(line)
        """
        assert codes(source) == ["REPRO020"]

    def test_class_release_through_one_indirection_is_accepted(self):
        """``close`` releases only via ``self._shutdown()`` — the guard
        handler calling ``self.close()`` must still count, which needs
        the within-class call-edge fixpoint."""
        source = """
            class Sink:
                def __init__(self, path):
                    self._fh = open(path, "w")
                    try:
                        self._fh.write(render_header())
                    except BaseException:
                        self.close()
                        raise

                def close(self):
                    self._shutdown()

                def _shutdown(self):
                    self._fh.close()
        """
        assert codes(source) == []

    def test_nulling_the_attribute_out_counts_as_a_release(self):
        source = """
            class Sink:
                def __init__(self, path):
                    self._fh = open(path, "w")

                def close(self):
                    self._fh = None
        """
        assert codes(source) == []

    def test_pragma_suppresses_on_the_acquire_line(self):
        source = """
            def load(path):
                fh = open(path)  # repro-lint: disable=REPRO020 handed to a finalizer registered below
                data = fh.read()
                fh.close()
                return data
        """
        assert codes(source) == []


# ----------------------------------------------------------------------
# REPRO021 — broad excepts swallowing typed failures
# ----------------------------------------------------------------------


class TestBroadExcept:
    def test_bare_except_is_flagged(self):
        source = """
            def run(job):
                try:
                    return job()
                except:
                    log.warning("boom")
        """
        assert "REPRO021" in codes(source)

    def test_except_exception_is_flagged(self):
        source = """
            def run(job):
                try:
                    return job()
                except Exception:
                    log.warning("boom")
        """
        assert "REPRO021" in codes(source)

    def test_broad_member_of_a_tuple_is_flagged(self):
        source = """
            def run(job):
                try:
                    return job()
                except (ValueError, BaseException):
                    log.warning("boom")
        """
        assert "REPRO021" in codes(source)

    def test_reraising_broad_except_is_accepted(self):
        source = """
            def run(job):
                try:
                    return job()
                except Exception:
                    log.warning("boom")
                    raise
        """
        assert codes(source) == []

    def test_typed_except_is_not_broad(self):
        source = """
            def run(job):
                try:
                    return job()
                except ValueError:
                    log.warning("boom")
        """
        assert "REPRO021" not in codes(source)

    def test_silent_broad_except_raises_both_codes(self):
        source = """
            def run(job):
                try:
                    return job()
                except Exception:
                    pass
        """
        assert codes(source) == ["REPRO021", "REPRO024"]


# ----------------------------------------------------------------------
# REPRO022 — the exit-code contract (cli.py / __main__.py only)
# ----------------------------------------------------------------------


class TestExitCodeContract:
    def test_literal_sys_exit_is_flagged(self):
        assert codes("""
            import sys
            sys.exit(1)
        """, path="cli.py") == ["REPRO022"]

    def test_argless_sys_exit_is_flagged(self):
        assert codes("""
            import sys
            sys.exit()
        """, path="cli.py") == ["REPRO022"]

    def test_registered_constant_is_accepted(self):
        assert codes("""
            import sys
            sys.exit(EXIT_OK)
        """, path="cli.py") == []

    def test_table_subscript_with_registered_key_is_accepted(self):
        assert codes("""
            import sys
            sys.exit(EXIT_CODES["USAGE"])
        """, path="cli.py") == []

    def test_table_subscript_with_unregistered_key_is_flagged(self):
        assert codes("""
            import sys
            sys.exit(EXIT_CODES["PANIC"])
        """, path="cli.py") == ["REPRO022"]

    def test_sys_exit_main_is_the_dispatch_idiom(self):
        assert codes("""
            import sys
            sys.exit(main())
        """, path="cli.py") == []

    def test_raise_systemexit_literal_is_flagged(self):
        assert codes("""
            def _cmd_x(args):
                raise SystemExit(2)
        """, path="cli.py") == ["REPRO022"]

    def test_bare_raise_systemexit_is_flagged(self):
        assert codes("""
            def _cmd_x(args):
                raise SystemExit
        """, path="cli.py") == ["REPRO022"]

    def test_raise_systemexit_constant_is_accepted(self):
        assert codes("""
            def _cmd_x(args):
                raise SystemExit(EXIT_USAGE)
        """, path="cli.py") == []

    def test_literal_return_in_cmd_function_is_flagged(self):
        assert codes("""
            def _cmd_x(args):
                return 2
        """, path="cli.py") == ["REPRO022"]
        assert codes("""
            def main(argv=None):
                return 0
        """, path="__main__.py") == ["REPRO022"]

    def test_conditional_literal_return_flags_both_branches(self):
        assert codes("""
            def _cmd_x(args):
                return 0 if args.ok else 1
        """, path="cli.py") == ["REPRO022", "REPRO022"]

    def test_constant_return_is_accepted(self):
        assert codes("""
            def _cmd_x(args):
                return EXIT_OK if args.ok else EXIT_FAILURE
        """, path="cli.py") == []

    def test_helper_functions_may_return_integers(self):
        assert codes("""
            def _positive(value):
                return 3
        """, path="cli.py") == []

    def test_rule_only_applies_to_exit_files(self):
        assert codes("""
            import sys
            sys.exit(1)
        """, path="example.py") == []


# ----------------------------------------------------------------------
# REPRO023 — determinism taint on @complexity paths
# ----------------------------------------------------------------------


class TestDeterminismTaint:
    def test_unseeded_random_on_a_complexity_path_is_flagged(self):
        source = """
            @complexity("n")
            def solve(chain):
                return random.random()
        """
        assert codes(source) == ["REPRO023"]

    def test_seeded_generator_construction_is_accepted(self):
        source = """
            @complexity("n")
            def solve(chain, seed):
                rng = random.Random(seed)
                return rng.random()
        """
        assert codes(source) == []

    def test_np_random_global_draw_is_flagged(self):
        source = """
            @complexity("n")
            def solve(chain):
                return np.random.rand(len(chain))
        """
        assert codes(source) == ["REPRO023"]

    def test_np_default_rng_is_accepted(self):
        source = """
            @complexity("n")
            def solve(chain, seed):
                rng = np.random.default_rng(seed)
                return rng.random()
        """
        assert codes(source) == []

    def test_wall_clock_reads_are_flagged(self):
        source = """
            @complexity("n")
            def solve(chain):
                started = time.time()
                stamp = datetime.now()
                return started, stamp
        """
        assert codes(source) == ["REPRO023", "REPRO023"]

    def test_zoned_datetime_now_is_accepted(self):
        source = """
            @complexity("n")
            def solve(chain, tz):
                return datetime.now(tz)
        """
        assert codes(source) == []

    def test_os_environ_read_is_flagged(self):
        source = """
            @complexity("n")
            def solve(chain):
                return os.environ.get("MODE", "fast")
        """
        assert codes(source) == ["REPRO023"]

    def test_unordered_iteration_is_flagged(self):
        source = """
            @complexity("n")
            def solve(entries):
                for key in entries.keys():
                    emit(key)
                for tag in {1, 2, 3}:
                    emit(tag)
        """
        assert codes(source) == ["REPRO023", "REPRO023"]

    def test_sorted_iteration_is_accepted(self):
        source = """
            @complexity("n")
            def solve(entries):
                for key in sorted(entries.keys()):
                    emit(key)
        """
        assert codes(source) == []

    def test_date_today_is_a_wall_clock_read(self):
        source = """
            @complexity("n")
            def solve(chain):
                return date.today()
        """
        assert codes(source) == ["REPRO023"]

    def test_async_for_over_a_set_is_flagged(self):
        source = """
            @complexity("n")
            async def solve(chain, emit):
                async for key in {1, 2}:
                    emit(key)
        """
        assert codes(source) == ["REPRO023"]

    def test_set_comprehension_iteration_is_flagged(self):
        source = """
            @complexity("n")
            def solve(entries):
                for key in {entry for entry in entries}:
                    emit(key)
        """
        assert codes(source) == ["REPRO023"]

    def test_frozenset_iteration_is_flagged(self):
        source = """
            @complexity("n")
            def solve(entries):
                for key in frozenset(entries):
                    emit(key)
        """
        assert codes(source) == ["REPRO023"]

    def test_undecorated_functions_are_not_rooted(self):
        source = """
            def helper(chain):
                return random.random()
        """
        assert codes(source) == []

    def test_taint_follows_the_call_graph(self):
        source = """
            def jitter():
                return random.random()

            @complexity("n")
            def solve(chain):
                return jitter()
        """
        assert codes(source) == ["REPRO023"]

    def test_taint_follows_same_class_method_calls(self):
        source = """
            class Solver:
                def _noise(self):
                    return time.time()

                @complexity("n")
                def solve(self, chain):
                    return self._noise()
        """
        assert codes(source) == ["REPRO023"]

    def test_pragma_suppresses_on_the_taint_line(self):
        source = """
            @complexity("n")
            def solve(chain):
                if "REPRO_VERIFY" in os.environ:  # repro-lint: disable=REPRO023 opt-in gate, never alters outputs
                    verify(chain)
                return chain
        """
        assert codes(source) == []


# ----------------------------------------------------------------------
# REPRO024 — silent-drop handlers
# ----------------------------------------------------------------------


class TestSilentDrop:
    def test_pass_body_is_flagged(self):
        source = """
            def run(job):
                try:
                    return job()
                except ValueError:
                    pass
        """
        assert codes(source) == ["REPRO024"]

    def test_assignment_only_body_is_flagged(self):
        source = """
            def run(job):
                try:
                    return job()
                except ValueError:
                    result = None
        """
        assert codes(source) == ["REPRO024"]

    def test_logging_is_reporting(self):
        source = """
            def run(job):
                try:
                    return job()
                except ValueError:
                    log.warning("job failed")
        """
        assert codes(source) == []

    def test_hub_publish_is_reporting(self):
        source = """
            def run(self, job):
                try:
                    return job()
                except ValueError as exc:
                    self.hub.publish({"event": "error", "err": str(exc)})
        """
        assert codes(source) == []

    def test_private_publish_wrapper_is_reporting(self):
        source = """
            def run(self, job):
                try:
                    return job()
                except ValueError as exc:
                    self._publish_result(error(exc))
        """
        assert codes(source) == []

    def test_metric_increment_is_reporting(self):
        source = """
            def run(self, job):
                try:
                    return job()
                except ValueError:
                    self.failures += 1
        """
        assert codes(source) == []

    def test_returning_a_fallback_is_reporting(self):
        source = """
            def run(job):
                try:
                    return job()
                except ValueError:
                    return None
        """
        assert codes(source) == []

    def test_reraise_is_reporting(self):
        source = """
            def run(job):
                try:
                    return job()
                except ValueError as exc:
                    raise RuntimeError("wrapped") from exc
        """
        assert codes(source) == []

    def test_import_fallback_is_exempt(self):
        source = """
            try:
                import numpy
            except ImportError:
                numpy = None
        """
        assert codes(source) == []

    def test_pragma_suppresses_on_the_except_line(self):
        source = """
            def run(job):
                try:
                    return job()
                except ValueError:  # repro-lint: disable=REPRO024 error lands in the result payload
                    pass
        """
        assert codes(source) == []


# ----------------------------------------------------------------------
# Scoping
# ----------------------------------------------------------------------


class TestScoping:
    LEAKY = """
        def load(path):
            fh = open(path)
            data = fh.read()
            fh.close()
            return data
    """

    def test_repro_scoped_packages_are_analyzed(self):
        for package in ("core", "engine", "observability"):
            path = f"src/repro/{package}/thing.py"
            assert codes(self.LEAKY, path=path) == ["REPRO020"], package

    def test_repro_unscoped_packages_are_skipped(self):
        for package in ("analysis", "verify", "graphs"):
            path = f"src/repro/{package}/thing.py"
            assert codes(self.LEAKY, path=path) == [], package

    def test_fixture_files_are_always_analyzed(self):
        assert codes(self.LEAKY, path="fixtures/thing.py") == ["REPRO020"]

    def test_check_faultflow_walks_trees(self, tmp_path):
        target = tmp_path / "pkg"
        target.mkdir()
        (target / "leaky.py").write_text(dedent(self.LEAKY))
        (target / "clean.py").write_text("x = 1\n")
        found, checked = check_faultflow([target])
        assert checked == 2
        assert [f.code for f in found] == ["REPRO020"]


# ----------------------------------------------------------------------
# The analyzer gate over the repo's own source tree
# ----------------------------------------------------------------------


class TestSrcTreeIsClean:
    def test_src_tree_is_clean(self):
        found, checked = check_faultflow([SRC])
        rendered = "\n".join(f.render() for f in found)
        assert not found, f"faultflow findings in src/:\n{rendered}"
        assert checked > 20  # core + engine + observability + exit files

    def test_rules_derive_from_registry(self):
        assert set(FAULTFLOW_RULES) == {
            "REPRO020", "REPRO021", "REPRO022", "REPRO023", "REPRO024"
        }


# ----------------------------------------------------------------------
# The module CLI
# ----------------------------------------------------------------------


class TestMain:
    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in FAULTFLOW_RULES:
            assert code in out

    def test_no_paths_is_usage_error(self, capsys):
        assert main([]) == 2

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["definitely/not/here.py"]) == 2

    def test_findings_exit_1(self, tmp_path, capsys):
        target = tmp_path / "leaky.py"
        target.write_text(dedent(TestScoping.LEAKY))
        assert main([str(target)]) == 1
        out = capsys.readouterr().out
        assert "REPRO020" in out

    def test_clean_exit_0(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        assert main([str(target)]) == 0

    def test_parse_error_exit_2(self, tmp_path, capsys):
        target = tmp_path / "broken.py"
        target.write_text("def broken(:\n")
        assert main([str(target)]) == 2
