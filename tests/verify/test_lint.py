"""Per-rule tests for :mod:`repro.verify.lint` (REPRO001-REPRO005)."""

from pathlib import Path

import pytest

from repro.verify.lint import (
    RULES,
    iter_python_files,
    lint_paths,
    lint_source,
    main,
)

SRC_ROOT = Path(__file__).resolve().parents[2] / "src"


def codes(source: str, path: str) -> list:
    return [f.code for f in lint_source(source, Path(path))]


LIB = "src/repro/core/example.py"


class TestRepro001Print:
    def test_print_in_library_flagged(self):
        assert codes("print('hi')\n", LIB) == ["REPRO001"]

    def test_cli_exempt(self):
        assert codes("print('hi')\n", "src/repro/cli.py") == []

    def test_main_module_exempt(self):
        assert codes("print('hi')\n", "src/repro/engine/__main__.py") == []

    def test_analysis_package_exempt(self):
        assert codes("print('hi')\n", "src/repro/analysis/report.py") == []

    def test_method_named_print_not_flagged(self):
        assert codes("obj.print()\n", LIB) == []


class TestRepro002Slots:
    def test_unslotted_core_class_flagged(self):
        assert codes("class A:\n    pass\n", LIB) == ["REPRO002"]

    def test_unslotted_engine_class_flagged(self):
        src = "class A:\n    x = 1\n"
        assert codes(src, "src/repro/engine/thing.py") == ["REPRO002"]

    def test_slotted_class_clean(self):
        assert codes("class A:\n    __slots__ = ('x',)\n", LIB) == []

    def test_annotated_slots_clean(self):
        src = "class A:\n    __slots__: tuple = ('x',)\n"
        assert codes(src, LIB) == []

    def test_outside_hot_packages_not_checked(self):
        assert codes("class A:\n    pass\n", "src/repro/analysis/sweep.py") == []

    def test_simulator_packages_are_checked(self):
        # desim/realtime/machine allocate per-event and per-stage
        # objects in hot loops; REPRO002 covers them too.
        for path in (
            "src/repro/desim/events.py",
            "src/repro/realtime/schedule.py",
            "src/repro/machine/executor.py",
        ):
            assert codes("class A:\n    pass\n", path) == ["REPRO002"]

    def test_exception_subclass_exempt(self):
        assert codes("class E(ValueError):\n    pass\n", LIB) == []
        assert codes("class E(PartitioningError):\n    pass\n", LIB) == []

    def test_namedtuple_exempt(self):
        src = "class Row(NamedTuple):\n    x: int\n"
        assert codes(src, LIB) == []

    def test_dataclass_slots_true_exempt(self):
        src = "@dataclass(slots=True)\nclass A:\n    x: int\n"
        assert codes(src, LIB) == []

    def test_plain_dataclass_flagged(self):
        src = "@dataclass\nclass A:\n    x: int\n"
        assert codes(src, LIB) == ["REPRO002"]


class TestRepro003WallClock:
    def test_time_time_flagged(self):
        assert codes("import time\nt = time.time()\n", LIB) == ["REPRO003"]

    def test_instrumentation_exempt(self):
        src = "import time\nt = time.time()\n"
        assert codes(src, "src/repro/instrumentation/timers.py") == []

    def test_observability_exempt(self):
        src = "import time\nt = time.time()\n"
        assert codes(src, "src/repro/observability/spans.py") == []

    def test_perf_counter_fine(self):
        assert codes("import time\nt = time.perf_counter()\n", LIB) == []


class TestRepro004MutableDefaults:
    @pytest.mark.parametrize(
        "default", ["[]", "{}", "set()", "dict()", "list()", "defaultdict(int)"]
    )
    def test_mutable_default_flagged(self, default):
        assert codes(f"def f(x={default}):\n    pass\n", LIB) == ["REPRO004"]

    def test_kwonly_default_flagged(self):
        assert codes("def f(*, x=[]):\n    pass\n", LIB) == ["REPRO004"]

    def test_lambda_default_flagged(self):
        assert codes("f = lambda x=[]: x\n", LIB) == ["REPRO004"]

    @pytest.mark.parametrize("default", ["()", "None", "0", "'s'", "frozenset()"])
    def test_immutable_default_fine(self, default):
        assert codes(f"def f(x={default}):\n    pass\n", LIB) == []


class TestRepro005NullCounter:
    def test_keyword_disabled_flagged(self):
        assert codes("c = OpCounter(enabled=False)\n", LIB) == ["REPRO005"]

    def test_positional_disabled_flagged(self):
        assert codes("c = OpCounter(False)\n", LIB) == ["REPRO005"]

    def test_enabled_counter_fine(self):
        assert codes("c = OpCounter()\n", LIB) == []
        assert codes("c = OpCounter(enabled=flag)\n", LIB) == []

    def test_counters_module_exempt(self):
        src = "NULL_COUNTER = OpCounter(enabled=False)\n"
        path = "src/repro/instrumentation/counters.py"
        assert codes(src, path) == []


class TestPragma:
    def test_pragma_suppresses_named_rule(self):
        src = "class A:  # repro-lint: disable=REPRO002\n    pass\n"
        assert codes(src, LIB) == []

    def test_pragma_with_reason_text(self):
        src = "class A:  # repro-lint: disable=REPRO002 (why not)\n    pass\n"
        assert codes(src, LIB) == []

    def test_pragma_other_rule_does_not_suppress(self):
        src = "class A:  # repro-lint: disable=REPRO001\n    pass\n"
        assert codes(src, LIB) == ["REPRO002"]

    def test_pragma_multiple_codes(self):
        src = (
            "def f(x=[]):  # repro-lint: disable=REPRO004,REPRO001\n"
            "    print(x)\n"
        )
        # print is on its own line; only the default is suppressed.
        assert codes(src, LIB) == ["REPRO001"]

    # One test per pragma shape the grammar admits (satellite fix for the
    # tokenizer that used to swallow everything after the first code).

    def test_pragma_comma_space_separated(self):
        src = "def f(x=[]):  # repro-lint: disable=REPRO004, REPRO001\n    pass\n"
        assert codes(src, LIB) == []

    def test_pragma_space_separated(self):
        src = "def f(x=[]):  # repro-lint: disable=REPRO004 REPRO001\n    pass\n"
        assert codes(src, LIB) == []

    def test_pragma_spaces_around_equals(self):
        src = "class A:  # repro-lint: disable = REPRO002\n    pass\n"
        assert codes(src, LIB) == []

    def test_pragma_code_then_justification_text(self):
        src = (
            "class A:  # repro-lint: disable=REPRO002 result type, "
            "allocated once per query\n    pass\n"
        )
        assert codes(src, LIB) == []

    def test_pragma_multi_code_then_justification_text(self):
        src = (
            "def f(x=[]):  # repro-lint: disable=REPRO004, REPRO002 "
            "shared sentinel default\n    pass\n"
        )
        assert codes(src, LIB) == []

    def test_pragma_justification_words_are_not_codes(self):
        from repro.verify.lint import pragma_disables

        disables = pragma_disables(
            "x = 1  # repro-lint: disable=REPRO004, REPRO001 NOT A CODE 123\n"
        )
        assert disables == {1: frozenset({"REPRO004", "REPRO001"})}

    def test_pragma_lowercase_code_ignored(self):
        from repro.verify.lint import pragma_disables

        assert pragma_disables("x = 1  # repro-lint: disable=repro004\n") == {}

    def test_no_pragma_returns_empty(self):
        from repro.verify.lint import pragma_disables

        assert pragma_disables("x = 1  # just a comment\n") == {}


class TestRepro012HubGuard:
    def test_unguarded_publish_in_engine_flagged(self):
        src = "self.hub.publish({'kind': 'event'})\n"
        assert codes(src, "src/repro/engine/batch.py") == ["REPRO012"]

    def test_unguarded_publish_in_core_flagged(self):
        src = "hub.publish_metric('x', 'observe', 1.0)\n"
        assert codes(src, "src/repro/core/bandwidth.py") == ["REPRO012"]

    def test_guarded_publish_clean(self):
        src = (
            "if self.hub.enabled:\n"
            "    self.hub.publish({'kind': 'event'})\n"
        )
        assert codes(src, "src/repro/engine/batch.py") == []

    def test_guard_through_local_alias_clean(self):
        src = (
            "hub = self.hub\n"
            "if hub.enabled:\n"
            "    hub.publish_span(record)\n"
        )
        assert codes(src, "src/repro/engine/batch.py") == []

    def test_nested_statement_inside_guard_clean(self):
        src = (
            "if plan.hub.enabled:\n"
            "    for item in items:\n"
            "        plan.hub.publish(item)\n"
        )
        assert codes(src, "src/repro/engine/plan.py") == []

    def test_else_branch_is_not_guarded(self):
        src = (
            "if hub.enabled:\n"
            "    pass\n"
            "else:\n"
            "    hub.publish(event)\n"
        )
        assert codes(src, "src/repro/engine/cache.py") == ["REPRO012"]

    def test_publish_after_guard_closes_flagged(self):
        src = (
            "if hub.enabled:\n"
            "    pass\n"
            "hub.publish(event)\n"
        )
        assert codes(src, "src/repro/engine/cache.py") == ["REPRO012"]

    def test_unrelated_if_does_not_guard(self):
        src = (
            "if count > 0:\n"
            "    hub.publish(event)\n"
        )
        assert codes(src, "src/repro/engine/batch.py") == ["REPRO012"]

    def test_observability_layer_exempt(self):
        # The hub implementation itself publishes unconditionally.
        src = "self.publish(event)\n"
        assert codes(src, "src/repro/observability/live.py") == []

    def test_analysis_layer_guarded(self):
        # Extended coverage: the live-rendering analysis package sits on
        # hot refresh loops, so its publishes need the guard too.
        src = "hub.publish(event)\n"
        assert codes(src, "src/repro/analysis/top.py") == ["REPRO012"]

    def test_realtime_layer_guarded(self):
        src = "hub.publish(event)\n"
        assert codes(src, "src/repro/realtime/scheduler.py") == ["REPRO012"]

    def test_desim_layer_exempt(self):
        # Simulation drivers are not hot paths; only the four guarded
        # packages carry the rule.
        src = "hub.publish(event)\n"
        assert codes(src, "src/repro/desim/parallel.py") == []

    def test_pragma_suppresses(self):
        src = "hub.publish(e)  # repro-lint: disable=REPRO012 startup only\n"
        assert codes(src, "src/repro/engine/batch.py") == []


class TestDriver:
    def test_src_tree_is_clean(self):
        findings, checked = lint_paths([SRC_ROOT])
        assert checked > 50
        assert findings == [], [f.render() for f in findings]

    def test_iter_python_files_single_file(self):
        files = list(iter_python_files([SRC_ROOT / "repro" / "cli.py"]))
        assert len(files) == 1

    def test_main_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in RULES:
            assert code in out

    def test_main_reports_findings(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x=[]):\n    pass\n")
        assert main([str(bad)]) == 1
        assert "REPRO004" in capsys.readouterr().out

    def test_main_clean_exit_zero(self, tmp_path):
        good = tmp_path / "good.py"
        good.write_text("def f(x=()):\n    pass\n")
        assert main([str(good)]) == 0

    def test_main_missing_path_exit_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.py")]) == 2

    def test_main_no_paths_exit_two(self, capsys):
        assert main([]) == 2

    def test_main_syntax_error_exit_two(self, tmp_path, capsys):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        assert main([str(broken)]) == 2
        assert "cannot parse" in capsys.readouterr().err
