"""Tests for :mod:`repro.verify.empirical`: the runtime complexity gate.

The headline acceptance test seeds regression (a) from the issue: a
quadratic-scan mutation of ``find_prime_subpaths`` — one that re-scans
the window pointer ``b`` to the *end of the chain* for every ``a``
instead of advancing it monotonically — must fail the gate with
REPRO009 on the ``bandwidth_min`` probe.
"""

import random

import pytest

import repro.core.prime_subpaths as prime_subpaths
from repro.verify.contracts import ComplexityBudget
from repro.verify.empirical import (
    ComplexityProbe,
    GateReport,
    ProbeResult,
    _fit_slope,
    default_probes,
    run_complexity_gate,
)

SMALL_SCALES = (128, 256, 512, 1024)


class TestFitSlope:
    def test_linear_growth_fits_one(self):
        points = [(float(n), 3.0 * n) for n in (64, 128, 256, 512)]
        assert _fit_slope(points) == pytest.approx(1.0)

    def test_quadratic_growth_against_linear_budget_fits_two(self):
        points = [(float(n), float(n * n)) for n in (64, 128, 256, 512)]
        assert _fit_slope(points) == pytest.approx(2.0)

    def test_constant_budget_fits_zero(self):
        points = [(8.0, float(n)) for n in (64, 128, 256)]
        assert _fit_slope(points) == 0.0


class TestProbeResult:
    def test_within_tolerance_passes(self):
        result = ProbeResult("x", "n", slope=1.1, tolerance=0.25, points=[])
        assert result.passed and result.code is None

    def test_over_tolerance_fails_with_repro009(self):
        result = ProbeResult("x", "n", slope=1.9, tolerance=0.25, points=[])
        assert not result.passed
        assert result.code == "REPRO009"
        assert "1.900" in result.message

    def test_report_round_trips_to_dict(self):
        result = ProbeResult("x", "n", slope=0.5, tolerance=0.25, points=[])
        report = GateReport([result], scales=(64, 128), seed=7)
        payload = report.as_dict()
        assert payload["passed"] is True
        assert payload["scales"] == [64, 128]
        assert payload["probes"][0]["name"] == "x"
        assert "complexity gate passed" in report.render()


class TestDefaultProbes:
    def test_probe_budgets_come_from_contracts(self):
        probes = {p.name: p for p in default_probes()}
        assert probes["core.bandwidth_min"].budget.matches(
            ComplexityBudget.parse("n + p log q")
        )
        assert probes["core.compute_prime_structure"].budget.matches(
            ComplexityBudget.parse("n")
        )
        assert probes["baselines.bandwidth_min_nlogn"].budget.matches(
            ComplexityBudget.parse("n log n")
        )

    def test_for_function_requires_a_contract(self):
        def undecorated():
            pass

        with pytest.raises(ValueError):
            ComplexityProbe.for_function("x", undecorated, lambda n, rng: (0.0, {}))


class TestGateOnMain:
    def test_gate_passes_on_the_real_solvers(self):
        report = run_complexity_gate(scales=SMALL_SCALES, reps=1)
        assert report.passed, report.render()
        assert report.failures == []

    def test_gate_is_deterministic_for_a_seed(self):
        first = run_complexity_gate(scales=(128, 256), reps=1, seed=3)
        second = run_complexity_gate(scales=(128, 256), reps=1, seed=3)
        assert first.as_dict() == second.as_dict()


def _quadratic_find_prime_subpaths(original):
    """Regression (a): scan ``b`` to the end of the chain for every ``a``.

    Note the window-restart variant (reset ``b = a`` each step) is *not*
    quadratic — window length is bounded by the number of tasks that fit
    under ``K`` — so the mutation must drop the early exit entirely to
    reproduce the O(n^2) scan the contract forbids.
    """

    def mutated(chain, bound, counter=None):
        primes = original(chain, bound)
        if counter is not None:
            n = chain.num_tasks
            advances = 0
            for a in range(n):
                for _b in range(a, n):
                    advances += 1
            counter.add("prime_tasks_scanned", n)
            counter.add("prime_window_advances", advances)
            counter.add("prime_candidates", len(primes))
        return primes

    return mutated


class TestSeededRegression:
    def test_quadratic_scan_mutation_fails_the_gate(self, monkeypatch):
        monkeypatch.setattr(
            prime_subpaths,
            "find_prime_subpaths",
            _quadratic_find_prime_subpaths(prime_subpaths.find_prime_subpaths),
        )
        probes = [p for p in default_probes() if p.name == "core.bandwidth_min"]
        report = run_complexity_gate(probes, scales=SMALL_SCALES, reps=1)
        assert not report.passed
        assert [f.code for f in report.failures] == ["REPRO009"]
        assert report.failures[0].slope > 1.5


class TestMeasurementSeeding:
    def test_measure_is_pure_given_the_rng(self):
        from repro.verify.empirical import _measure_bandwidth_min

        a = _measure_bandwidth_min(256, random.Random("fixed"))
        b = _measure_bandwidth_min(256, random.Random("fixed"))
        assert a == b
