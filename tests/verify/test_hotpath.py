"""Tests for :mod:`repro.verify.hotpath`: hot-path allocation analysis.

Acceptance criteria from the issue: each rule (REPRO016 loop-invariant
allocations, REPRO017 repeated attribute loads, REPRO018
accidentally-quadratic idioms, REPRO019 NumPy temporary chains) gets a
rule x construct golden matrix, pragmas on loop headers must suppress
the loop-scoped rules anywhere inside the loop body (nested loops
included), call-graph propagation must reach helpers and same-class
methods, and the analyzer must run clean over the repo's own ``src/``
tree after the remediation.
"""

import textwrap
from pathlib import Path

import pytest

from repro.verify.hotpath import (
    HOTPATH_RULES,
    LOOP_SCOPED_RULES,
    check_hotpath,
    hotpath_check_source,
    main,
)

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"


def dedent(source: str) -> str:
    return textwrap.dedent(source)


def codes(source: str, path: str = "example.py") -> list:
    return [f.code for f in hotpath_check_source(dedent(source), Path(path))]


def findings(source: str, path: str = "example.py") -> list:
    return hotpath_check_source(dedent(source), Path(path))


# Spliced as ``{HOT}def ...`` inside 12-space-indented f-string
# fixtures; the trailing indent keeps the decorator and def aligned.
HOT = '@complexity("n")\n            '


# ----------------------------------------------------------------------
# Rooting and call-graph propagation
# ----------------------------------------------------------------------


class TestRooting:
    def test_undecorated_function_is_not_analyzed(self):
        source = """
            def cold(rows):
                for row in rows:
                    scale = [1, 2, 3]
                    row.consume(scale)
        """
        assert codes(source) == []

    def test_decorated_function_is_analyzed(self):
        source = """
            @complexity("n")
            def hot(rows):
                for row in rows:
                    scale = [1, 2, 3]
                    row.consume(scale)
        """
        assert codes(source) == ["REPRO016"]

    def test_helper_called_from_root_is_analyzed(self):
        source = """
            def helper(rows):
                for row in rows:
                    table = {"a": 1}
                    row.consume(table)

            @complexity("n")
            def hot(rows):
                return helper(rows)
        """
        assert codes(source) == ["REPRO016"]

    def test_self_method_called_from_decorated_method(self):
        source = """
            class Plan:
                @complexity("n")
                def solve(self, rows):
                    return self._impl(rows)

                def _impl(self, rows):
                    for row in rows:
                        table = {"a": 1}
                        row.consume(table)
        """
        assert codes(source) == ["REPRO016"]

    def test_unreached_sibling_method_is_not_analyzed(self):
        source = """
            class Plan:
                @complexity("n")
                def solve(self, rows):
                    return list(rows)

                def unreached(self, rows):
                    for row in rows:
                        table = {"a": 1}
                        row.consume(table)
        """
        assert codes(source) == []

    def test_dotted_complexity_decorator_roots(self):
        source = """
            @contracts.complexity("n log n")
            def hot(rows):
                for row in rows:
                    scale = [1, 2]
                    row.consume(scale)
        """
        assert codes(source) == ["REPRO016"]


# ----------------------------------------------------------------------
# REPRO016: loop-invariant allocations
# ----------------------------------------------------------------------


class TestLoopInvariantAllocations:
    @pytest.mark.parametrize(
        "alloc",
        [
            "[lo, hi]",
            "{'lo': lo}",
            "{lo, hi}",
            "(lo, hi)",
            "[x * lo for x in weights]",
            "{x for x in weights}",
            "{x: lo for x in weights}",
            "np.zeros(lo)",
            "np.empty(hi)",
            "np.array(weights)",
            "np.full(lo, hi)",
        ],
    )
    def test_invariant_allocation_is_flagged(self, alloc):
        source = f"""
            import numpy as np

            {HOT}def hot(rows, weights, lo, hi):
                for row in rows:
                    scratch = {alloc}
                    row.consume(scratch)
        """
        assert codes(source) == ["REPRO016"]

    @pytest.mark.parametrize(
        "alloc",
        [
            "[row, row]",
            "{'row': row}",
            "np.zeros(row)",
            "[x for x in row]",
        ],
    )
    def test_loop_dependent_allocation_is_not_flagged(self, alloc):
        source = f"""
            import numpy as np

            {HOT}def hot(rows):
                for row in rows:
                    scratch = {alloc}
                    use(scratch)
        """
        assert codes(source) == []

    def test_empty_literal_accumulator_is_exempt(self):
        source = f"""
            {HOT}def hot(rows):
                out = []
                for row in rows:
                    bucket = []
                    table = {{}}
                    out.append((bucket, table))
                return out
        """
        assert codes(source) == []

    def test_all_constant_tuple_is_exempt(self):
        source = f"""
            {HOT}def hot(rows):
                for row in rows:
                    row.consume((1, 2, 3))
        """
        assert codes(source) == []

    def test_name_assigned_in_body_counts_as_variant(self):
        source = f"""
            {HOT}def hot(rows):
                for row in rows:
                    size = row.size
                    scratch = [size, size]
                    use(scratch)
        """
        assert codes(source) == []

    def test_invariant_in_inner_loop_checks_all_enclosing_loops(self):
        # ``col`` varies with the *outer* loop: hoisting past it would
        # change behaviour, so no enclosing loop admits the hoist.
        source = f"""
            {HOT}def hot(rows, cols):
                for col in cols:
                    for row in rows:
                        pair = [col, col]
                        use(pair)
        """
        assert codes(source) == []

    def test_finding_names_function_and_loop_line(self):
        source = f"""
            {HOT}def hot(rows, lo):
                for row in rows:
                    row.consume([lo, lo])
        """
        (finding,) = findings(source)
        assert finding.code == "REPRO016"
        assert "hot" in finding.message
        assert "list literal" in finding.message


# ----------------------------------------------------------------------
# REPRO017: repeated attribute loads
# ----------------------------------------------------------------------


class TestRepeatedAttributeLoads:
    def test_two_loads_per_iteration_flagged_once(self):
        source = f"""
            {HOT}def hot(edges):
                total = 0
                for edge in edges:
                    if edge.first_prime > 0:
                        total += edge.first_prime
                return total
        """
        found = findings(source)
        assert [f.code for f in found] == ["REPRO017"]
        assert "edge.first_prime" in found[0].message
        assert "2x" in found[0].message

    def test_single_load_is_fine(self):
        source = f"""
            {HOT}def hot(edges):
                total = 0
                for edge in edges:
                    total += edge.weight
                return total
        """
        assert codes(source) == []

    def test_maximal_chain_only(self):
        source = f"""
            {HOT}def hot(self, edges):
                for edge in edges:
                    use(self.cache.table)
                    use(self.cache.table)
        """
        found = findings(source)
        assert [f.code for f in found] == ["REPRO017"]
        assert "self.cache.table" in found[0].message

    def test_stored_path_is_exempt(self):
        source = f"""
            {HOT}def hot(self, edges):
                for edge in edges:
                    self.total = self.total + edge.weight
        """
        assert codes(source) == []

    def test_stored_prefix_is_exempt(self):
        source = f"""
            {HOT}def hot(self, edges):
                for edge in edges:
                    use(self.box.value)
                    use(self.box.value)
                    self.box = edge
        """
        assert codes(source) == []

    def test_rebound_root_is_exempt(self):
        source = f"""
            {HOT}def hot(nodes):
                for n in nodes:
                    cursor = n
                    use(cursor.next)
                    cursor = cursor.next
                    use(cursor.next)
        """
        assert codes(source) == []

    def test_while_test_counts_as_per_iteration(self):
        source = f"""
            {HOT}def hot(q, sentinel):
                while q.head is not None and q.head is not sentinel:
                    q.pop()
        """
        found = findings(source)
        assert [f.code for f in found] == ["REPRO017"]
        assert "q.head" in found[0].message

    def test_subscripted_chain_is_not_counted(self):
        source = f"""
            {HOT}def hot(rows):
                for row in rows:
                    use(rows[0].weight)
                    use(rows[0].weight)
        """
        assert codes(source) == []

    def test_loads_in_different_loops_do_not_accumulate(self):
        source = f"""
            {HOT}def hot(edges):
                for edge in edges:
                    use(edge.weight)
                for edge in edges:
                    use(edge.weight)
        """
        assert codes(source) == []


# ----------------------------------------------------------------------
# REPRO018: accidentally-quadratic idioms
# ----------------------------------------------------------------------


class TestQuadraticIdioms:
    def test_insert_front_is_flagged(self):
        source = f"""
            {HOT}def hot(rows):
                out = []
                for row in rows:
                    out.insert(0, row)
                return out
        """
        assert codes(source) == ["REPRO018"]

    def test_insert_elsewhere_is_fine(self):
        source = f"""
            {HOT}def hot(rows):
                out = []
                for row in rows:
                    out.insert(1, row)
                return out
        """
        assert codes(source) == []

    def test_list_membership_is_flagged(self):
        source = f"""
            {HOT}def hot(rows):
                for row in rows:
                    if row in [1, 2, 3]:
                        use(row)
        """
        assert codes(source) == ["REPRO018"]

    def test_set_membership_is_fine(self):
        source = f"""
            {HOT}def hot(rows):
                for row in rows:
                    if row in {{1, 2, 3}}:
                        use(row)
        """
        assert codes(source) == []

    @pytest.mark.parametrize(
        "stmt",
        [
            "acc += [row]",
            "acc += [r for r in row]",
            'acc += "x"',
            'acc += f"{row}"',
        ],
    )
    def test_concat_growth_is_flagged(self, stmt):
        source = f"""
            {HOT}def hot(rows, acc):
                for row in rows:
                    {stmt}
                return acc
        """
        assert codes(source) == ["REPRO018"]

    def test_numeric_augassign_is_fine(self):
        source = f"""
            {HOT}def hot(rows):
                total = 0
                for row in rows:
                    total += 1
                return total
        """
        assert codes(source) == []

    def test_outside_loop_is_fine(self):
        source = f"""
            {HOT}def hot(rows):
                out = list(rows)
                out.insert(0, None)
                return out
        """
        assert codes(source) == []


# ----------------------------------------------------------------------
# REPRO019: NumPy temporary chains
# ----------------------------------------------------------------------


class TestNumpyTemporaryChains:
    def test_chained_binops_on_arrays_flagged(self):
        source = f"""
            import numpy as np

            {HOT}def hot(bounds):
                acc = np.zeros(8)
                for k in bounds:
                    out = acc * k + acc
                    use(out)
        """
        assert codes(source) == ["REPRO019"]

    def test_single_binop_is_fine(self):
        source = f"""
            import numpy as np

            {HOT}def hot(bounds):
                acc = np.zeros(8)
                for k in bounds:
                    use(acc * k)
        """
        assert codes(source) == []

    def test_scalar_chain_is_fine(self):
        source = f"""
            {HOT}def hot(bounds):
                for k in bounds:
                    use(k * 2 + 1 - 3)
        """
        assert codes(source) == []

    def test_elementwise_call_counts_as_temporary(self):
        source = f"""
            import numpy as np

            {HOT}def hot(bounds):
                acc = np.zeros(8)
                for k in bounds:
                    out = np.minimum(acc, k) + acc
                    use(out)
        """
        assert codes(source) == ["REPRO019"]

    def test_parameter_fed_to_numpy_is_array_like(self):
        source = f"""
            import numpy as np

            {HOT}def hot(prefix, bounds):
                idx = np.searchsorted(prefix, 0.0)
                for k in bounds:
                    gap = prefix * k + prefix
                    use(gap)
        """
        assert codes(source) == ["REPRO019"]

    def test_derived_array_names_propagate(self):
        source = f"""
            import numpy as np

            {HOT}def hot(bounds):
                base = np.zeros(8)
                derived = base
                for k in bounds:
                    out = derived * k + derived
                    use(out)
        """
        assert codes(source) == ["REPRO019"]

    def test_outside_loop_is_fine(self):
        source = f"""
            import numpy as np

            {HOT}def hot(k):
                acc = np.zeros(8)
                return acc * k + acc
        """
        assert codes(source) == []


# ----------------------------------------------------------------------
# Pragmas: loop-scoped suppression (REPRO016-REPRO018)
# ----------------------------------------------------------------------


class TestLoopScopedPragmas:
    def test_pragma_on_finding_line_suppresses(self):
        source = f"""
            {HOT}def hot(rows, lo):
                for row in rows:
                    row.consume([lo, lo])  # repro-lint: disable=REPRO016
        """
        assert codes(source) == []

    def test_pragma_on_loop_header_suppresses_body(self):
        source = f"""
            {HOT}def hot(rows, lo):
                for row in rows:  # repro-lint: disable=REPRO016
                    row.consume([lo, lo])
        """
        assert codes(source) == []

    def test_pragma_on_outer_loop_covers_nested_loops(self):
        source = f"""
            {HOT}def hot(rows, cols, lo):
                for col in cols:  # repro-lint: disable=REPRO016,REPRO017
                    for row in rows:
                        use(col.scale)
                        use(col.scale)
                        row.consume([lo, lo])
        """
        assert codes(source) == []

    def test_pragma_on_inner_loop_does_not_cover_outer_body(self):
        source = f"""
            {HOT}def hot(rows, cols, lo):
                for col in cols:
                    for row in rows:  # repro-lint: disable=REPRO016
                        row.consume([lo, lo])
                    col.consume([lo, lo])
        """
        found = findings(source)
        assert [f.code for f in found] == ["REPRO016"]
        # Only the outer-loop allocation survives.
        assert found[0].line == 7

    def test_pragma_for_other_code_does_not_suppress(self):
        source = f"""
            {HOT}def hot(rows, lo):
                for row in rows:  # repro-lint: disable=REPRO017
                    row.consume([lo, lo])
        """
        assert codes(source) == ["REPRO016"]

    def test_repro019_pragma_is_line_anchored_only(self):
        source = f"""
            import numpy as np

            {HOT}def hot(bounds):
                acc = np.zeros(8)
                for k in bounds:  # repro-lint: disable=REPRO019
                    out = acc * k + acc
                    use(out)
        """
        # Loop-header pragma does NOT cover the line-scoped REPRO019.
        assert codes(source) == ["REPRO019"]
        suppressed = source.replace(
            "out = acc * k + acc",
            "out = acc * k + acc  # repro-lint: disable=REPRO019",
        )
        assert codes(suppressed) == []

    def test_loop_scoped_rule_set(self):
        assert LOOP_SCOPED_RULES == {"REPRO016", "REPRO017", "REPRO018"}


# ----------------------------------------------------------------------
# Scoping, tree checks, CLI
# ----------------------------------------------------------------------


class TestTreeAndCli:
    def test_rule_table_is_complete(self):
        assert set(HOTPATH_RULES) == {
            "REPRO016",
            "REPRO017",
            "REPRO018",
            "REPRO019",
        }

    def test_src_tree_is_clean(self):
        found, checked = check_hotpath([SRC])
        assert checked > 20
        assert found == [], "\n".join(f.render() for f in found)

    def test_scope_excludes_non_solver_repro_packages(self, tmp_path):
        pkg = tmp_path / "repro" / "observability"
        pkg.mkdir(parents=True)
        bad = (
            '@complexity("n")\n'
            "def hot(rows, lo):\n"
            "    for row in rows:\n"
            "        row.consume([lo, lo])\n"
        )
        (pkg / "metrics.py").write_text(bad)
        core = tmp_path / "repro" / "core"
        core.mkdir(parents=True)
        (core / "solver.py").write_text(bad)
        found, checked = check_hotpath([tmp_path])
        assert checked == 1
        assert [f.code for f in found] == ["REPRO016"]
        assert "core" in str(found[0].path)

    def test_syntax_error_propagates(self):
        with pytest.raises(SyntaxError):
            hotpath_check_source("def broken(:\n", Path("bad.py"))

    def test_main_lists_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "REPRO016" in out and "REPRO019" in out

    def test_main_missing_path(self, capsys):
        assert main(["does/not/exist.py"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_main_no_paths(self, capsys):
        assert main([]) == 2
        assert "no paths" in capsys.readouterr().err

    def test_main_reports_findings(self, tmp_path, capsys):
        target = tmp_path / "hot.py"
        target.write_text(
            '@complexity("n")\n'
            "def hot(rows, lo):\n"
            "    for row in rows:\n"
            "        row.consume([lo, lo])\n"
        )
        assert main([str(target)]) == 1
        captured = capsys.readouterr()
        assert "REPRO016" in captured.out
        assert "1 finding(s)" in captured.err

    def test_main_clean_run(self, tmp_path, capsys):
        target = tmp_path / "cold.py"
        target.write_text("def cold():\n    return 1\n")
        assert main([str(target)]) == 0
        assert "clean: 1 file(s)" in capsys.readouterr().err

    def test_main_syntax_error(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("def broken(:\n")
        assert main([str(target)]) == 2
        assert "cannot parse" in capsys.readouterr().err

    def test_findings_are_sorted(self, tmp_path):
        source = f"""
            {HOT}def hot(rows, lo):
                out = []
                for row in rows:
                    out.insert(0, row)
                    row.consume([lo, lo])
                return out
        """
        found = findings(source)
        assert [f.code for f in found] == ["REPRO018", "REPRO016"]
        assert found[0].line < found[1].line


# ----------------------------------------------------------------------
# Async constructs and analyzer edge cases
# ----------------------------------------------------------------------


class TestAsyncAndEdgeCases:
    def test_async_function_and_async_for_are_analyzed(self):
        source = f"""
            {HOT}async def agg(stream, k):
                total = 0
                async for cursor in stream:
                    pad = [k, k]
                    cursor = cursor.step
                    total += cursor.bias * cursor.bias + pad[0]
                return total
        """
        found = codes(source)
        # The invariant literal and the doubled cursor.bias load both
        # fire; rebinding the async-for target does not exempt it.
        assert sorted(found) == ["REPRO016", "REPRO017"]

    def test_async_for_target_is_loop_variant(self):
        source = f"""
            {HOT}async def collect(stream):
                out = []
                async for row in stream:
                    out.append([row, row])
                return out
        """
        assert codes(source) == []

    def test_deleted_name_is_loop_variant(self):
        source = f"""
            {HOT}def consume(rows, handle):
                out = []
                for row in rows:
                    out.append([handle, handle])
                    del handle
                return out
        """
        # `del handle` inside the body means the name cannot be hoisted
        # past the loop — it must count as loop-variant.
        assert codes(source) == []

    def test_not_in_list_membership_flagged_once(self):
        source = f"""
            {HOT}def skim(rows):
                kept = []
                for row in rows:
                    if row not in [3, 5, 7]:
                        kept.append(row)
                return kept
        """
        # REPRO018 for the linear scan; the comparator literal must not
        # double-report as a REPRO016 allocation.
        assert codes(source) == ["REPRO018"]

    def test_array_seed_fixpoint_handles_self_assignment(self):
        source = f"""
            import numpy as np

            {HOT}def normalize(rows):
                buf = np.zeros(8)
                buf = buf * 1.0
                out = 0.0
                for row in rows:
                    out += float((buf - row + buf * row).sum())
                return out
        """
        # `buf = buf * 1.0` makes targets == array_names exactly: the
        # seeding fixpoint must still terminate and keep buf array-like.
        assert codes(source) == ["REPRO019"]
