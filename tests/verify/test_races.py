"""Tests for :mod:`repro.verify.races`: the dynamic race hammer.

Two layers: harness mechanics (deterministic op streams, exception
propagation, a *guaranteed* lost-update detection via a barrier-forced
interleaving), and the acceptance runs from the issue — 8 threads
hammering every ``@shared_state`` object with certificate-checked end
states.  The acceptance runs are the dynamic complement of the static
REPRO013 pass: they prove the declared locks actually close the races.
"""

import random
import threading

import pytest

from repro.verify.races import (
    ConcurrencyHarness,
    RaceConditionError,
    hammer_all,
    hammer_histogram,
    hammer_metrics_registry,
    hammer_plan_cache,
    hammer_prime_structure_cache,
    hammer_streaming_sink,
    hammer_telemetry_hub,
)

ACCEPTANCE = ConcurrencyHarness(threads=8, ops_per_thread=100, seed=20260808)


class TestHarness:
    def test_total_ops(self):
        assert ConcurrencyHarness(threads=4, ops_per_thread=25).total_ops == 100

    def test_needs_two_threads(self):
        with pytest.raises(ValueError):
            ConcurrencyHarness(threads=1)
        with pytest.raises(ValueError):
            ConcurrencyHarness(ops_per_thread=0)

    def test_op_streams_are_deterministic(self):
        def draws(seed):
            out = {}
            harness = ConcurrencyHarness(threads=3, ops_per_thread=10, seed=seed)
            lock = threading.Lock()

            def op(tid, i, rng):
                with lock:
                    out.setdefault(tid, []).append(rng.randrange(1000))

            harness.run(op)
            return out

        assert draws(7) == draws(7)
        assert draws(7) != draws(8)

    def test_op_exception_propagates(self):
        harness = ConcurrencyHarness(threads=2, ops_per_thread=1)

        def op(tid, i, rng):
            raise ValueError(f"boom from {tid}")

        with pytest.raises(RaceConditionError, match="boom"):
            harness.run(op)

    def test_switch_interval_restored(self):
        import sys

        before = sys.getswitchinterval()
        harness = ConcurrencyHarness(threads=2, ops_per_thread=1)
        harness.run(lambda tid, i, rng: None)
        assert sys.getswitchinterval() == before

    def test_detects_forced_lost_update(self):
        """A barrier-forced read-modify-write interleaving must be caught.

        Both threads read the counter, rendezvous, then write back
        ``read + 1`` — a guaranteed (not probabilistic) lost update, so
        the end-state audit deterministically fires.
        """
        harness = ConcurrencyHarness(threads=2, ops_per_thread=1)
        rendezvous = threading.Barrier(2)
        state = {"count": 0}

        def op(tid, i, rng):
            snapshot = state["count"]
            rendezvous.wait()
            state["count"] = snapshot + 1

        harness.run(op)
        assert state["count"] == 1  # one update lost, by construction
        with pytest.raises(RaceConditionError):
            if state["count"] != harness.total_ops:
                raise RaceConditionError("lost update")


class TestAcceptanceHammers:
    """The 8-thread acceptance runs from the issue, one per shared object."""

    def test_prime_structure_cache(self):
        summary = hammer_prime_structure_cache(ACCEPTANCE)
        assert summary["ops"] == 800

    def test_plan_cache(self):
        summary = hammer_plan_cache(ACCEPTANCE)
        assert summary["ops"] == 800
        assert summary["plans_validated"] >= 1

    def test_telemetry_hub(self):
        summary = hammer_telemetry_hub(ACCEPTANCE)
        assert summary["events"] == 800
        assert summary["errors"] == 0

    def test_metrics_registry(self):
        summary = hammer_metrics_registry(ACCEPTANCE)
        assert summary["histogram_count"] == 800

    def test_histogram_spill(self):
        summary = hammer_histogram(ACCEPTANCE)
        assert summary["bucket_mass"] == 800

    def test_streaming_sink(self, tmp_path):
        # Satellite: concurrent writers, no mid-record interleaving, and
        # the resumed file still parses with exactly one header.
        summary = hammer_streaming_sink(ACCEPTANCE, str(tmp_path / "race.jsonl"))
        assert summary["headers"] == 1
        assert summary["lines"] == 2 * 800 + 1

    def test_hammer_all_covers_every_scenario(self, tmp_path):
        small = ConcurrencyHarness(threads=4, ops_per_thread=150, seed=3)
        results = hammer_all(small, sink_path=str(tmp_path / "all.jsonl"))
        assert set(results) == {
            "prime_structure_cache",
            "plan_cache",
            "telemetry_hub",
            "metrics_registry",
            "histogram",
            "streaming_sink",
        }


class TestSeededWorkloads:
    def test_query_workload_reproducible(self):
        # Same seed, same query multiset — the workload half of the
        # determinism contract (the OS owns the interleaving half).
        a = random.Random("5-queries").random()
        b = random.Random("5-queries").random()
        assert a == b
