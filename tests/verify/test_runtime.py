"""Tests for the ``REPRO_VERIFY`` runtime wiring.

The flag must gate every entry point (solvers certify only when it is
set), the cross-check must catch doctored engine results, and the CLI
``--verify`` flags must turn the machinery on end to end.
"""

import json

import pytest

from repro.core.bandwidth import ChainCutResult, bandwidth_min
from repro.core.inverse import chain_pareto_frontier, tree_pareto_frontier
from repro.core.pipeline import partition_chain, partition_tree
from repro.core.bottleneck import bottleneck_min
from repro.core.processor_min import processor_min
from repro.engine import PartitionEngine
from repro.graphs.chain import Chain
from repro.graphs.generators import random_chain, random_tree
from repro.verify import VerificationError, verification_enabled
from repro.verify.runtime import (
    ENV_FLAG,
    cross_check_chain_backends,
    enable_verification,
    maybe_verify_chain_result,
    verify_chain_result,
)


@pytest.fixture
def chain():
    return Chain([4.0, 3.0, 5.0, 2.0, 6.0], [1.0, 9.0, 2.0, 3.0])


class TestFlag:
    @pytest.mark.parametrize("value", ["1", "true", "YES", " on "])
    def test_truthy_values(self, monkeypatch, value):
        monkeypatch.setenv(ENV_FLAG, value)
        assert verification_enabled()

    @pytest.mark.parametrize("value", ["0", "false", "", "off", "2"])
    def test_falsy_values(self, monkeypatch, value):
        monkeypatch.setenv(ENV_FLAG, value)
        assert not verification_enabled()

    def test_unset_is_off(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)
        assert not verification_enabled()

    def test_enable_verification_sets_env(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "0")  # registers teardown restore
        enable_verification()
        assert verification_enabled()


class TestGating:
    def test_disabled_flag_skips_even_bad_claims(self, monkeypatch, chain):
        monkeypatch.delenv(ENV_FLAG, raising=False)
        # Blatantly false claim; must not raise while verification is off.
        maybe_verify_chain_result(chain, [], 1.0)

    def test_enabled_flag_checks(self, monkeypatch, chain):
        monkeypatch.setenv(ENV_FLAG, "1")
        with pytest.raises(VerificationError):
            maybe_verify_chain_result(chain, [], 7.0)

    def test_verify_chain_result_accepts_optimum(self, chain):
        result = bandwidth_min(chain, 7.0)
        report = verify_chain_result(
            chain,
            result.cut_indices,
            7.0,
            claimed_weight=result.weight,
            optimal_bandwidth=True,
        )
        assert report.ok


class TestCrossCheck:
    def test_honest_result_passes(self, chain):
        result = bandwidth_min(chain, 7.0)
        assert cross_check_chain_backends(chain, 7.0, result).ok

    def test_doctored_weight_caught(self, chain):
        result = bandwidth_min(chain, 7.0)
        doctored = ChainCutResult(chain, result.cut_indices, result.weight + 1)
        with pytest.raises(VerificationError, match="engine.weight_divergence"):
            cross_check_chain_backends(chain, 7.0, doctored)

    def test_doctored_cut_caught(self, chain):
        result = bandwidth_min(chain, 7.0)
        other = [i for i in range(chain.num_edges) if i not in result.cut_indices]
        doctored = ChainCutResult(chain, other, result.weight)
        with pytest.raises(VerificationError, match="engine.cut_divergence"):
            cross_check_chain_backends(chain, 7.0, doctored)


class TestSolverWiring:
    """With the flag on, every solver path self-certifies cleanly."""

    def test_engine_cache_solve(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")
        engine = PartitionEngine()
        chain = random_chain(60, rng=7)
        bound = 3.0 * chain.max_vertex_weight()
        result = engine.solve(chain, bound)
        # Warm-started second solve inside the stability interval is
        # cross-checked too.
        again = engine.solve(chain, bound * 1.0001)
        assert result.weight >= again.weight

    @pytest.mark.parametrize(
        "objective",
        ["bandwidth", "bottleneck", "processors",
         "bottleneck+processors", "bottleneck+bandwidth"],
    )
    def test_partition_chain_objectives(self, monkeypatch, objective):
        monkeypatch.setenv(ENV_FLAG, "1")
        chain = random_chain(40, rng=3)
        bound = 4.0 * chain.max_vertex_weight()
        result = partition_chain(chain, bound, objective)
        assert result.is_feasible(bound)

    def test_tree_solvers(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")
        tree = random_tree(50, rng=11)
        bound = 3.0 * tree.max_vertex_weight()
        bottleneck_min(tree, bound)
        processor_min(tree, bound)
        partition_tree(tree, bound)

    def test_pareto_frontiers(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")
        assert len(chain_pareto_frontier(random_chain(30, rng=5), 6)) == 6
        assert len(tree_pareto_frontier(random_tree(30, rng=5), 5)) == 5

    def test_batch_records_verification_failure_per_query(self, monkeypatch):
        # An infeasible query fails in its 'error' field either way; a
        # feasible one must verify cleanly with the flag on.
        from repro.engine import PartitionQuery

        monkeypatch.setenv(ENV_FLAG, "1")
        engine = PartitionEngine()
        chain = random_chain(20, rng=1)
        queries = [
            PartitionQuery.from_chain(chain, 2.0 * chain.max_vertex_weight()),
            PartitionQuery.from_chain(chain, 1e-6),
        ]
        results = engine.solve_many(queries, max_workers=0)
        assert results[0].ok
        assert not results[1].ok


class TestCli:
    def test_run_verify_flag(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv(ENV_FLAG, "0")  # restore after the CLI mutates it
        assert main(["run", "--n", "50", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "certificate + backend cross-check OK" in out

    def test_batch_verify_flag(self, monkeypatch, tmp_path):
        from repro.cli import main

        monkeypatch.setenv(ENV_FLAG, "0")
        queries = tmp_path / "queries.jsonl"
        results = tmp_path / "results.jsonl"
        queries.write_text(
            json.dumps({"alpha": [1, 2, 3, 4], "beta": [1, 1, 1], "bound": 5})
            + "\n"
        )
        code = main(
            ["batch", "--input", str(queries), "--output", str(results),
             "--verify"]
        )
        assert code == 0
        record = json.loads(results.read_text().splitlines()[0])
        assert "error" not in record
