"""Tests for :mod:`repro.verify.flow`: process-pool hygiene analysis.

Includes the two seeded-regression acceptance tests from the issue:
a module-global append inside a batch worker must trip REPRO006, and a
lambda capturing a Tracer submitted from ``solve_many`` must trip
REPRO007 — both injected into the *real* ``engine/batch.py`` source so
the checks track the code they are meant to guard.
"""

from pathlib import Path

from repro.verify.flow import check_flow, flow_check_source

REPO = Path(__file__).resolve().parents[2]
BATCH = REPO / "src" / "repro" / "engine" / "batch.py"
FLOW_TARGETS = [
    BATCH,
    REPO / "src" / "repro" / "desim" / "parallel.py",
    REPO / "src" / "repro" / "desim" / "distributed.py",
]


def codes(source: str, path: str = "src/repro/engine/example.py") -> list:
    return [f.code for f in flow_check_source(source, Path(path))]


POOL_PREAMBLE = "from concurrent.futures import ProcessPoolExecutor\n"


def submit(worker_def: str, call: str = "pool.submit(work, 1)") -> str:
    """A minimal module: a worker, a pool, one submission."""
    return (
        POOL_PREAMBLE
        + worker_def
        + "\ndef run(items):\n"
        + "    with ProcessPoolExecutor() as pool:\n"
        + f"        return list({call})\n"
    )


class TestRepro006GlobalMutation:
    def test_global_statement_rebind(self):
        src = submit(
            "COUNT = 0\n"
            "def work(x):\n"
            "    global COUNT\n"
            "    COUNT += 1\n"
            "    return x\n"
        )
        assert codes(src) == ["REPRO006"]

    def test_mutator_method_on_module_global(self):
        src = submit(
            "RESULTS = []\n"
            "def work(x):\n"
            "    RESULTS.append(x)\n"
            "    return x\n"
        )
        assert codes(src) == ["REPRO006"]

    def test_subscript_write_on_module_global(self):
        src = submit(
            "CACHE = {}\n"
            "def work(x):\n"
            "    CACHE[x] = x\n"
            "    return x\n"
        )
        assert codes(src) == ["REPRO006"]

    def test_mutation_in_transitively_reached_helper(self):
        src = submit(
            "SEEN = set()\n"
            "def record(x):\n"
            "    SEEN.add(x)\n"
            "def work(x):\n"
            "    record(x)\n"
            "    return x\n"
        )
        assert codes(src) == ["REPRO006"]

    def test_local_mutation_is_fine(self):
        src = submit(
            "def work(x):\n"
            "    results = []\n"
            "    results.append(x)\n"
            "    return results\n"
        )
        assert codes(src) == []

    def test_read_of_module_global_is_fine(self):
        src = submit(
            "LIMIT = 10\n"
            "def work(x):\n"
            "    return min(x, LIMIT)\n"
        )
        assert codes(src) == []

    def test_thread_pool_exempt(self):
        src = (
            "from concurrent.futures import ThreadPoolExecutor\n"
            "RESULTS = []\n"
            "def work(x):\n"
            "    RESULTS.append(x)\n"
            "def run(items):\n"
            "    with ThreadPoolExecutor() as pool:\n"
            "        return list(pool.map(work, items))\n"
        )
        assert codes(src) == []

    def test_pragma_suppresses(self):
        src = submit(
            "RESULTS = []\n"
            "def work(x):\n"
            "    RESULTS.append(x)  # repro-lint: disable=REPRO006\n"
            "    return x\n"
        )
        assert codes(src) == []


class TestRepro007Unpicklable:
    def test_lambda_submission(self):
        src = submit("def work(x):\n    return x\n", "pool.map(lambda x: work(x), [1])")
        assert codes(src) == ["REPRO007"]

    def test_lambda_capturing_unpicklable_mentions_capture(self):
        src = (
            POOL_PREAMBLE
            + "from repro.observability.spans import Tracer\n"
            + "def work(x, t):\n    return x\n"
            + "def run(items):\n"
            + "    tracer = Tracer()\n"
            + "    with ProcessPoolExecutor() as pool:\n"
            + "        return list(pool.map(lambda p: work(p, tracer), items))\n"
        )
        findings = flow_check_source(src, Path("src/repro/engine/example.py"))
        assert [f.code for f in findings] == ["REPRO007"]
        assert "tracer" in findings[0].message

    def test_nested_function_submission(self):
        src = (
            POOL_PREAMBLE
            + "def run(items):\n"
            + "    def work(x):\n"
            + "        return x\n"
            + "    with ProcessPoolExecutor() as pool:\n"
            + "        return list(pool.map(work, items))\n"
        )
        assert codes(src) == ["REPRO007"]

    def test_unpicklable_argument(self):
        src = (
            POOL_PREAMBLE
            + "from threading import Lock\n"
            + "def work(x, lock):\n    return x\n"
            + "def run(items):\n"
            + "    lock = Lock()\n"
            + "    with ProcessPoolExecutor() as pool:\n"
            + "        return [pool.submit(work, i, lock) for i in items]\n"
        )
        assert codes(src) == ["REPRO007"]

    def test_module_level_function_is_fine(self):
        src = submit("def work(x):\n    return x\n", "pool.map(work, [1, 2])")
        assert codes(src) == []


class TestRepro008UnseededRandom:
    def test_random_draw_in_worker(self):
        src = submit(
            "import random\n"
            "def work(x):\n"
            "    return x + random.random()\n"
        )
        assert codes(src) == ["REPRO008"]

    def test_numpy_random_draw_in_worker(self):
        src = submit(
            "import numpy as np\n"
            "def work(x):\n"
            "    return x + np.random.rand()\n"
        )
        assert codes(src) == ["REPRO008"]

    def test_seeded_worker_is_fine(self):
        src = submit(
            "import random\n"
            "def work(x):\n"
            "    random.seed(x)\n"
            "    return x + random.random()\n"
        )
        assert codes(src) == []

    def test_local_rng_instance_is_fine(self):
        src = submit(
            "import random\n"
            "def work(x):\n"
            "    rng = random.Random(x)\n"
            "    return x + rng.random()\n"
        )
        assert codes(src) == []


class TestRealTree:
    def test_flow_targets_are_clean(self):
        findings, checked = check_flow(FLOW_TARGETS)
        assert checked == len(FLOW_TARGETS)
        assert findings == [], [f.render() for f in findings]

    def test_src_tree_is_clean(self):
        findings, checked = check_flow([REPO / "src"])
        assert checked > 50
        assert findings == [], [f.render() for f in findings]


class TestSeededRegressions:
    """The issue's acceptance mutations, injected into the real batch.py."""

    def _source(self) -> str:
        return BATCH.read_text()

    def test_module_global_append_in_worker_caught(self):
        # Mutation (b): the payload worker appends every answer to a
        # module-level list — state that silently diverges per process.
        original = "    answer.telemetry = telemetry\n    return answer"
        mutated = (
            "    answer.telemetry = telemetry\n"
            "    _SEEN_RESULTS.append(answer)\n"
            "    return answer"
        )
        source = self._source()
        assert original in source
        source = source.replace(original, mutated) + "\n_SEEN_RESULTS: list = []\n"
        findings = flow_check_source(source, BATCH)
        assert "REPRO006" in [f.code for f in findings]
        message = next(f.message for f in findings if f.code == "REPRO006")
        assert "_SEEN_RESULTS" in message

    def test_lambda_capturing_tracer_caught(self):
        # Mutation (c): solve_many submits a closure over a live Tracer
        # instead of the module-level payload worker.
        source = self._source()
        pool_line = (
            "            with ProcessPoolExecutor(max_workers=max_workers)"
            " as pool:"
        )
        map_call = (
            "pool.map(\n"
            "                    _solve_payload, grouped, chunksize=chunksize\n"
            "                )"
        )
        assert pool_line in source and map_call in source
        source = source.replace(
            pool_line,
            "            from repro.observability.spans import Tracer\n"
            "            tracer = Tracer()\n" + pool_line,
        )
        source = source.replace(
            map_call, "pool.map(lambda p: _solve_payload(p, tracer), grouped)"
        )
        findings = flow_check_source(source, BATCH)
        assert "REPRO007" in [f.code for f in findings]
        message = next(f.message for f in findings if f.code == "REPRO007")
        assert "lambda" in message
