"""Unit tests for the mutation operators (:mod:`repro.verify.operators`).

Operators must (a) enumerate sites deterministically, (b) produce
mutants that still compile, (c) leave annotated/typing-only constructs
alone, and (d) make exactly the textual change they advertise.
"""

import ast
import textwrap

import pytest

from repro.verify.operators import (
    OPERATORS,
    MutationSite,
    apply_site,
    enumerate_sites,
    equivalent_annotations,
    operator_catalog,
    site_is_annotated,
)

FIXTURE = textwrap.dedent(
    '''
    """Fixture module for operator tests."""
    import heapq
    from typing import List, Tuple

    __all__ = ["sweep"]


    class Window:
        __slots__ = ("lo", "hi")

        def __init__(self, lo: int, hi: int) -> None:
            self.lo = lo
            self.hi = hi


    def sweep(weights: List[float], bound: float) -> Tuple[int, float]:
        total = 0.0
        count = 0
        picked: List[float] = []
        heap: List[Tuple[float, int]] = []
        for i, w in enumerate(weights):
            if w < bound:
                total = total + w
                picked.append(w)
                heapq.heappush(heap, (w, i))
            elif w <= bound + 1:
                count += 1
        best = min(total, bound)
        worst = max(total, bound)
        order = sorted(picked, reverse=True)
        return (count, best + worst + len(order))
    '''
)


def fixture_tree() -> ast.Module:
    return ast.parse(FIXTURE)


def sites_by_operator(tree):
    grouped = {}
    for site in enumerate_sites(tree):
        grouped.setdefault(site.operator, []).append(site)
    return grouped


class TestEnumeration:
    def test_deterministic(self):
        first = [s.key() for s in enumerate_sites(fixture_tree())]
        second = [s.key() for s in enumerate_sites(fixture_tree())]
        assert first == second
        assert len(first) == len(set(first))

    def test_expected_operator_coverage(self):
        grouped = sites_by_operator(fixture_tree())
        # w < bound, w <= bound + 1: two comparison sites.
        assert len(grouped["flip-compare"]) == 2
        # bound + 1 is a boundary-shift site.
        assert len(grouped["shift-index"]) == 1
        # total + w, best + worst + len(order): arithmetic swaps exist.
        assert len(grouped["swap-arith"]) >= 2
        # picked.append(w) is droppable.
        assert len(grouped["drop-append"]) == 1
        # heappush tuple argument can be order-inverted.
        assert len(grouped["heap-invert"]) == 1
        # sorted(picked, reverse=True) can lose its sort.
        assert len(grouped["drop-sorted"]) == 1
        assert len(grouped["flip-minmax"]) == 2

    def test_skips_annotations_and_dunders(self):
        # Tuples inside type annotations (Tuple[float, int]) and the
        # __slots__/__all__ assignments must NOT be mutation sites; the
        # only droppable tuples are the heappush argument and the
        # return value.
        grouped = sites_by_operator(fixture_tree())
        tuple_sites = grouped.get("drop-tuple-field", [])
        assert len(tuple_sites) == 2

    def test_indices_are_per_operator_and_stable(self):
        grouped = sites_by_operator(fixture_tree())
        for sites in grouped.values():
            assert [s.index for s in sites] == list(range(len(sites)))


class TestApplication:
    def test_every_mutant_compiles_and_differs(self):
        pristine = ast.unparse(fixture_tree())
        for site in enumerate_sites(fixture_tree()):
            mutant_tree = apply_site(fixture_tree(), site)
            source = ast.unparse(mutant_tree)
            compile(source, "<mutant>", "exec")  # must stay syntactic
            assert source != pristine, f"no-op mutant from {site}"

    def test_flip_compare_textual_change(self):
        grouped = sites_by_operator(fixture_tree())
        site = grouped["flip-compare"][0]  # w < bound
        source = ast.unparse(apply_site(fixture_tree(), site))
        assert "w <= bound:" in source

    def test_drop_sorted_textual_change(self):
        grouped = sites_by_operator(fixture_tree())
        source = ast.unparse(apply_site(fixture_tree(), grouped["drop-sorted"][0]))
        assert "list(picked)" in source
        assert "reverse" not in source

    def test_flip_minmax_textual_change(self):
        grouped = sites_by_operator(fixture_tree())
        source = ast.unparse(apply_site(fixture_tree(), grouped["flip-minmax"][0]))
        # min(total, bound) became max(...): the module now has two max calls.
        assert source.count("max(") == 2

    def test_heap_invert_negates_first_element(self):
        grouped = sites_by_operator(fixture_tree())
        source = ast.unparse(apply_site(fixture_tree(), grouped["heap-invert"][0]))
        assert "(-w, i)" in source

    def test_stale_site_rejected(self):
        site = MutationSite(
            operator="flip-compare",
            index=999,
            lineno=1,
            col_offset=0,
            description="stale",
        )
        with pytest.raises(LookupError):
            apply_site(fixture_tree(), site)


class TestAnnotations:
    SOURCE = textwrap.dedent(
        """
        def f(x, y):
            if x < y:  # repro-mutate: equivalent=flip-compare -- tie is harmless
                return x
            if x <= y + 1:  # repro-mutate: equivalent -- anything goes here
                return y
            return max(x, y)
        """
    )

    def test_parse_ops(self):
        notes = equivalent_annotations(self.SOURCE)
        assert notes[3] == frozenset({"flip-compare"})
        assert notes[5] == frozenset({"*"})

    def test_site_filtering(self):
        notes = equivalent_annotations(self.SOURCE)
        tree = ast.parse(self.SOURCE)
        flips = [s for s in enumerate_sites(tree) if s.operator == "flip-compare"]
        annotated = [s for s in flips if site_is_annotated(s, notes)]
        # Both the targeted line-3 pragma and the wildcard line-5 pragma
        # suppress their flip sites.
        assert len(annotated) == 2
        minmax = [s for s in enumerate_sites(tree) if s.operator == "flip-minmax"]
        assert not any(site_is_annotated(s, notes) for s in minmax)


class TestCatalog:
    def test_catalog_matches_registry(self):
        catalog = operator_catalog()
        assert [name for name, _ in catalog] == [op.name for op in OPERATORS]
        assert all(summary for _, summary in catalog)
