"""Tests for :mod:`repro.verify.concurrency`: shared-state analysis.

Acceptance criteria from the issue: each rule (REPRO013 unlocked
shared-state writes, REPRO014 blocking calls in ``async def``, REPRO015
fork-unsafe capture) must detect at least three distinct seeded
violations, pragma escapes must work, interprocedural lock propagation
must not false-positive on the guarded-entry / unguarded-helper
layering the engine caches use, and the analyzer must run clean over
the repo's own ``src/`` tree after the remediation.
"""

from pathlib import Path

import pytest

from repro.verify.concurrency import (
    CONCURRENCY_RULES,
    check_concurrency,
    concurrency_check_source,
    shared_state_inventory,
)
from repro.verify.markers import SHARED_REGISTRY, concurrent_entry, shared_state

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"


def codes(source: str, path: str = "example.py") -> list:
    return [f.code for f in concurrency_check_source(source, Path(path))]


def findings(source: str, path: str = "example.py") -> list:
    return concurrency_check_source(source, Path(path))


SHARED_PREAMBLE = (
    "import threading\n"
    "from repro.verify.markers import concurrent_entry, shared_state\n"
)


def shared_class(body: str, decorator: str = '@shared_state(lock="_lock")') -> str:
    return (
        SHARED_PREAMBLE
        + f"{decorator}\n"
        + "class Box:\n"
        + "    def __init__(self):\n"
        + "        self._lock = threading.RLock()\n"
        + "        self.items = []\n"
        + "        self.count = 0\n"
        + body
    )


# ----------------------------------------------------------------------
# REPRO013: unlocked writes to shared state
# ----------------------------------------------------------------------


class TestUnlockedWrites:
    def test_unlocked_attribute_rebind(self):
        source = shared_class(
            "    @concurrent_entry\n"
            "    def reset(self):\n"
            "        self.items = []\n"
        )
        assert codes(source) == ["REPRO013"]

    def test_unlocked_augassign(self):
        source = shared_class(
            "    @concurrent_entry\n"
            "    def bump(self):\n"
            "        self.count += 1\n"
        )
        assert codes(source) == ["REPRO013"]

    def test_unlocked_mutator_call(self):
        source = shared_class(
            "    @concurrent_entry\n"
            "    def push(self, item):\n"
            "        self.items.append(item)\n"
        )
        assert codes(source) == ["REPRO013"]

    def test_unlocked_subscript_write(self):
        source = shared_class(
            "    @concurrent_entry\n"
            "    def tag(self):\n"
            "        self.items[0] = None\n"
        )
        assert codes(source) == ["REPRO013"]

    def test_locked_write_is_clean(self):
        source = shared_class(
            "    @concurrent_entry\n"
            "    def push(self, item):\n"
            "        with self._lock:\n"
            "            self.items.append(item)\n"
            "            self.count += 1\n"
        )
        assert codes(source) == []

    def test_custom_lock_name(self):
        source = (
            SHARED_PREAMBLE
            + '@shared_state(lock="_mu")\n'
            + "class Box:\n"
            + "    def __init__(self):\n"
            + "        self._mu = threading.RLock()\n"
            + "        self.count = 0\n"
            + "    @concurrent_entry\n"
            + "    def good(self):\n"
            + "        with self._mu:\n"
            + "            self.count += 1\n"
            + "    @concurrent_entry\n"
            + "    def bad(self):\n"
            + "        self.count += 1\n"
        )
        found = findings(source)
        assert [f.code for f in found] == ["REPRO013"]
        assert "self._mu" in found[0].message

    def test_bare_decorator_defaults_to_lock(self):
        source = (
            SHARED_PREAMBLE
            + "@shared_state\n"
            + "class Box:\n"
            + "    def __init__(self):\n"
            + "        self._lock = threading.RLock()\n"
            + "        self.count = 0\n"
            + "    @concurrent_entry\n"
            + "    def bump(self):\n"
            + "        self.count += 1\n"
        )
        assert codes(source) == ["REPRO013"]

    def test_init_is_exempt(self):
        # __init__ writes without the lock by design: the object is not
        # shared while it is being constructed.
        source = shared_class(
            "    @concurrent_entry\n"
            "    def noop(self):\n"
            "        return self.count\n"
        )
        assert codes(source) == []

    def test_undecorated_class_is_ignored(self):
        source = (
            SHARED_PREAMBLE
            + "class Box:\n"
            + "    def __init__(self):\n"
            + "        self.count = 0\n"
            + "    def bump(self):\n"
            + "        self.count += 1\n"
        )
        assert codes(source) == []

    def test_pragma_escape(self):
        source = shared_class(
            "    @concurrent_entry\n"
            "    def reset(self):\n"
            "        self.items = []  # repro-lint: disable=REPRO013\n"
        )
        assert codes(source) == []

    def test_async_entry_method_flagged(self):
        # async entry points mutate the same shared dicts; the class
        # collector must not skip AsyncFunctionDef members.
        source = shared_class(
            "    @concurrent_entry\n"
            "    async def areset(self):\n"
            "        self.items = []\n"
        )
        assert codes(source) == ["REPRO013"]

    def test_mutator_through_subscript_chain(self):
        # self.items[0].append(...) is still a write to self.items.
        source = shared_class(
            "    @concurrent_entry\n"
            "    def touch(self):\n"
            "        self.items[0].append(1)\n"
        )
        assert codes(source) == ["REPRO013"]


class TestLockPropagation:
    """Interprocedural-within-class reachability (the engine layering)."""

    def test_helper_called_under_lock_is_clean(self):
        source = shared_class(
            "    @concurrent_entry\n"
            "    def push(self, item):\n"
            "        with self._lock:\n"
            "            self._store(item)\n"
            "    def _store(self, item):\n"
            "        self.items.append(item)\n"
        )
        assert codes(source) == []

    def test_helper_called_outside_lock_is_flagged(self):
        source = shared_class(
            "    @concurrent_entry\n"
            "    def push(self, item):\n"
            "        self._store(item)\n"
            "    def _store(self, item):\n"
            "        self.items.append(item)\n"
        )
        found = findings(source)
        assert [f.code for f in found] == ["REPRO013"]
        assert "_store" in found[0].message

    def test_transitive_unlocked_chain(self):
        source = shared_class(
            "    @concurrent_entry\n"
            "    def push(self, item):\n"
            "        self._a(item)\n"
            "    def _a(self, item):\n"
            "        self._b(item)\n"
            "    def _b(self, item):\n"
            "        self.items.append(item)\n"
        )
        assert codes(source) == ["REPRO013"]

    def test_unreachable_helper_is_not_flagged(self):
        source = shared_class(
            "    @concurrent_entry\n"
            "    def noop(self):\n"
            "        return self.count\n"
            "    def maintenance(self):\n"
            "        self.items = []\n"
        )
        assert codes(source) == []

    def test_nested_function_does_not_inherit_lock(self):
        # A closure runs later, on an arbitrary thread: holding the lock
        # at definition time proves nothing about call time.
        source = shared_class(
            "    @concurrent_entry\n"
            "    def push(self, item):\n"
            "        with self._lock:\n"
            "            def later():\n"
            "                self.items.append(item)\n"
            "            return later\n"
        )
        assert codes(source) == ["REPRO013"]


class TestModuleGlobals:
    def test_global_rebind(self):
        source = (
            "from repro.verify.markers import concurrent_entry\n"
            "TOTAL = 0\n"
            "@concurrent_entry\n"
            "def bump():\n"
            "    global TOTAL\n"
            "    TOTAL += 1\n"
        )
        assert codes(source) == ["REPRO013"]

    def test_global_subscript_write(self):
        source = (
            "from repro.verify.markers import concurrent_entry\n"
            "CACHE = {}\n"
            "@concurrent_entry\n"
            "def put(k, v):\n"
            "    CACHE[k] = v\n"
        )
        assert codes(source) == ["REPRO013"]

    def test_global_mutator_reached_through_helper(self):
        source = (
            "from repro.verify.markers import concurrent_entry\n"
            "EVENTS = []\n"
            "@concurrent_entry\n"
            "def record(e):\n"
            "    _push(e)\n"
            "def _push(e):\n"
            "    EVENTS.append(e)\n"
        )
        assert codes(source) == ["REPRO013"]

    def test_unmarked_function_writing_global_is_ignored(self):
        source = (
            "CACHE = {}\n"
            "def put(k, v):\n"
            "    CACHE[k] = v\n"
        )
        assert codes(source) == []

    def test_global_read_is_clean(self):
        source = (
            "from repro.verify.markers import concurrent_entry\n"
            "LIMIT = 10\n"
            "@concurrent_entry\n"
            "def check(n):\n"
            "    return n < LIMIT\n"
        )
        assert codes(source) == []

    def test_global_attribute_write(self):
        source = (
            "from repro.verify.markers import concurrent_entry\n"
            "CONFIG = make_config()\n"
            "@concurrent_entry\n"
            "def set_mode(m):\n"
            "    CONFIG.mode = m\n"
        )
        assert codes(source) == ["REPRO013"]

    def test_annotated_global_is_tracked(self):
        source = (
            "from repro.verify.markers import concurrent_entry\n"
            "CACHE: dict = {}\n"
            "@concurrent_entry\n"
            "def put(k, v):\n"
            "    CACHE[k] = v\n"
        )
        assert codes(source) == ["REPRO013"]

    def test_imported_name_augmented_at_module_level_is_tracked(self):
        # `FLAGS` enters the module-global set only through the
        # module-level AugAssign; the import itself is not a binding
        # the tracker records.
        source = (
            "from repro.verify.markers import concurrent_entry\n"
            "from settings import FLAGS\n"
            "FLAGS += ['dev']\n"
            "@concurrent_entry\n"
            "def toggle(name):\n"
            "    FLAGS.append(name)\n"
        )
        assert codes(source) == ["REPRO013"]

    def test_async_entry_function_flagged(self):
        source = (
            "from repro.verify.markers import concurrent_entry\n"
            "TOTAL = 0\n"
            "@concurrent_entry\n"
            "async def bump():\n"
            "    global TOTAL\n"
            "    TOTAL += 1\n"
        )
        assert codes(source) == ["REPRO013"]


# ----------------------------------------------------------------------
# REPRO014: blocking calls in async bodies
# ----------------------------------------------------------------------


class TestAsyncBlocking:
    def test_time_sleep(self):
        source = (
            "import time\n"
            "async def poll():\n"
            "    time.sleep(1)\n"
        )
        assert codes(source) == ["REPRO014"]

    def test_open_call(self):
        source = (
            "async def load(path):\n"
            "    return open(path)\n"
        )
        assert codes(source) == ["REPRO014"]

    def test_subprocess_run(self):
        source = (
            "import subprocess\n"
            "async def shell():\n"
            "    subprocess.run(['true'])\n"
        )
        assert codes(source) == ["REPRO014"]

    def test_pool_result_get(self):
        source = (
            "async def wait(pool):\n"
            "    fut = pool.apply_async(len, ([],))\n"
            "    return fut.get()\n"
        )
        assert codes(source) == ["REPRO014"]

    def test_file_handle_read(self):
        # open() itself is one finding; reading the tracked handle is a
        # second — both block the loop.
        source = (
            "async def slurp(path):\n"
            "    fh = open(path)\n"
            "    return fh.read()\n"
        )
        assert codes(source) == ["REPRO014", "REPRO014"]

    def test_sync_function_is_exempt(self):
        source = (
            "import time\n"
            "def poll():\n"
            "    time.sleep(1)\n"
        )
        assert codes(source) == []

    def test_nested_sync_def_is_exempt(self):
        source = (
            "import time\n"
            "async def outer():\n"
            "    def helper():\n"
            "        time.sleep(1)\n"
            "    return helper\n"
        )
        assert codes(source) == []

    def test_pragma_escape(self):
        source = (
            "import time\n"
            "async def poll():\n"
            "    time.sleep(1)  # repro-lint: disable=REPRO014\n"
        )
        assert codes(source) == []


# ----------------------------------------------------------------------
# REPRO015: fork-unsafe capture into process pools
# ----------------------------------------------------------------------

POOL_PREAMBLE = (
    "from concurrent.futures import ProcessPoolExecutor\n"
    "import threading\n"
)


class TestForkCapture:
    def test_ships_lock_carrier_argument(self):
        source = (
            POOL_PREAMBLE
            + "class Carrier:\n"
            + "    def __init__(self):\n"
            + "        self._lock = threading.RLock()\n"
            + "def run(items):\n"
            + "    c = Carrier()\n"
            + "    with ProcessPoolExecutor() as pool:\n"
            + "        pool.submit(len, c)\n"
        )
        assert codes(source) == ["REPRO015"]

    def test_submits_bound_method_of_carrier(self):
        source = (
            POOL_PREAMBLE
            + "class Carrier:\n"
            + "    def __init__(self):\n"
            + "        self._lock = threading.RLock()\n"
            + "    def work(self, item):\n"
            + "        return item\n"
            + "    def fan_out(self, items):\n"
            + "        with ProcessPoolExecutor() as pool:\n"
            + "            pool.submit(self.work, items)\n"
        )
        found = findings(source)
        assert [f.code for f in found] == ["REPRO015"]
        assert "self.work" in found[0].message

    def test_submits_bound_method_of_carrier_local(self):
        source = (
            POOL_PREAMBLE
            + "class Carrier:\n"
            + "    def __init__(self):\n"
            + "        self._lock = threading.RLock()\n"
            + "    def work(self, item):\n"
            + "        return item\n"
            + "def run(items):\n"
            + "    c = Carrier()\n"
            + "    with ProcessPoolExecutor() as pool:\n"
            + "        pool.submit(c.work, items)\n"
        )
        found = findings(source)
        assert [f.code for f in found] == ["REPRO015"]
        assert "submits bound method 'c.work' of Carrier" in found[0].message

    def test_pool_bound_by_assignment(self):
        # `pool = ProcessPoolExecutor()` (no with-block) must register
        # the local as a pool handle too.
        source = (
            POOL_PREAMBLE
            + "class Carrier:\n"
            + "    def __init__(self):\n"
            + "        self._lock = threading.RLock()\n"
            + "def run(items):\n"
            + "    c = Carrier()\n"
            + "    pool = ProcessPoolExecutor()\n"
            + "    pool.submit(len, c)\n"
        )
        assert codes(source) == ["REPRO015"]

    def test_capture_inside_async_function(self):
        source = (
            POOL_PREAMBLE
            + "class Carrier:\n"
            + "    def __init__(self):\n"
            + "        self._lock = threading.RLock()\n"
            + "async def run(items):\n"
            + "    c = Carrier()\n"
            + "    with ProcessPoolExecutor() as pool:\n"
            + "        pool.submit(len, c)\n"
        )
        assert codes(source) == ["REPRO015"]

    def test_ships_unsafe_attribute(self):
        source = (
            POOL_PREAMBLE
            + "class Carrier:\n"
            + "    def __init__(self):\n"
            + "        self._lock = threading.RLock()\n"
            + "    def fan_out(self, items):\n"
            + "        with ProcessPoolExecutor() as pool:\n"
            + "            pool.submit(len, self._lock)\n"
        )
        assert codes(source) == ["REPRO015"]

    def test_shared_state_class_always_carries_its_lock(self):
        source = (
            POOL_PREAMBLE
            + "from repro.verify.markers import shared_state\n"
            + '@shared_state(lock="_lock")\n'
            + "class Cache:\n"
            + "    def __init__(self):\n"
            + "        self._lock = threading.RLock()\n"
            + "def run(items):\n"
            + "    cache = Cache()\n"
            + "    with ProcessPoolExecutor() as pool:\n"
            + "        pool.map(len, items)\n"
            + "        pool.submit(len, cache)\n"
        )
        assert codes(source) == ["REPRO015"]

    def test_transitive_carrier_composition(self):
        # Wrapper holds a Carrier which holds a lock: the fixpoint pass
        # must mark Wrapper unsafe too.
        source = (
            POOL_PREAMBLE
            + "class Carrier:\n"
            + "    def __init__(self):\n"
            + "        self._lock = threading.RLock()\n"
            + "class Wrapper:\n"
            + "    def __init__(self):\n"
            + "        self.inner = Carrier()\n"
            + "def run(items):\n"
            + "    w = Wrapper()\n"
            + "    with ProcessPoolExecutor() as pool:\n"
            + "        pool.submit(len, w)\n"
        )
        assert codes(source) == ["REPRO015"]

    def test_plain_data_argument_is_clean(self):
        source = (
            POOL_PREAMBLE
            + "def run(items):\n"
            + "    with ProcessPoolExecutor() as pool:\n"
            + "        pool.submit(len, items)\n"
        )
        assert codes(source) == []

    def test_thread_pool_is_exempt(self):
        # Thread pools share memory and pickle nothing.
        source = (
            "from concurrent.futures import ThreadPoolExecutor\n"
            "import threading\n"
            "class Carrier:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.RLock()\n"
            "def run(items):\n"
            "    c = Carrier()\n"
            "    with ThreadPoolExecutor() as pool:\n"
            "        pool.submit(len, c)\n"
        )
        assert codes(source) == []

    def test_pragma_escape(self):
        source = (
            POOL_PREAMBLE
            + "class Carrier:\n"
            + "    def __init__(self):\n"
            + "        self._lock = threading.RLock()\n"
            + "def run(items):\n"
            + "    c = Carrier()\n"
            + "    with ProcessPoolExecutor() as pool:\n"
            + "        pool.submit(len, c)  # repro-lint: disable=REPRO015\n"
        )
        assert codes(source) == []


# ----------------------------------------------------------------------
# Inventory + runtime markers
# ----------------------------------------------------------------------


class TestInventoryAndMarkers:
    def test_inventory_reports_effect_sets(self, tmp_path):
        module = tmp_path / "box.py"
        module.write_text(
            shared_class(
                "    @concurrent_entry\n"
                "    def push(self, item):\n"
                "        with self._lock:\n"
                "            self.items.append(item)\n"
                "    def peek(self):\n"
                "        return self.items\n"
            )
        )
        inventory = shared_state_inventory([tmp_path])
        (key,) = inventory
        assert key.endswith("box.py::Box")
        methods = inventory[key]
        assert methods["push"]["entry"] is True
        assert methods["push"]["writes"] == ["items"]
        assert methods["push"]["unlocked_writes"] == 0
        assert methods["peek"]["entry"] is False
        assert "items" in methods["peek"]["reads"]

    def test_inventory_method_order_is_sorted(self, tmp_path):
        # Definition order is deliberately non-alphabetical; the
        # inventory must normalise it for stable docs/report diffs.
        module = tmp_path / "box.py"
        module.write_text(
            shared_class(
                "    def zpop(self):\n"
                "        return self.items\n"
                "    def apeek(self):\n"
                "        return self.count\n"
            )
        )
        inventory = shared_state_inventory([tmp_path])
        (key,) = inventory
        methods = list(inventory[key])
        assert methods == sorted(methods)

    def test_markers_register_and_stamp(self):
        @shared_state(lock="_mu")
        class Probe:
            def __init__(self):
                self.value = 0

        assert Probe.__shared_lock__ == "_mu"
        key = f"{Probe.__module__}.{Probe.__qualname__}"
        assert SHARED_REGISTRY[key] == "_mu"

        @concurrent_entry
        def entry():
            return 1

        assert entry.__concurrent_entry__ is True
        assert entry() == 1

    def test_engine_classes_are_registered(self):
        # The remediated hot-path classes must appear in the runtime
        # registry the race hammer iterates.
        import repro.engine.cache  # noqa: F401 - registration side effect
        import repro.observability.live  # noqa: F401
        import repro.observability.metrics  # noqa: F401

        registered = set(SHARED_REGISTRY)
        for name in (
            "repro.engine.cache.PrimeStructureCache",
            "repro.engine.cache.PlanCache",
            "repro.observability.live.TelemetryHub",
            "repro.observability.live.StreamingJsonlSink",
            "repro.observability.metrics.MetricsRegistry",
            "repro.observability.metrics.Histogram",
        ):
            assert name in registered, name


# ----------------------------------------------------------------------
# Repo gate
# ----------------------------------------------------------------------


class TestRepoClean:
    def test_src_tree_is_clean(self):
        found, checked = check_concurrency([SRC])
        assert checked > 50
        assert found == [], [f.render() for f in found]

    def test_rule_table_is_complete(self):
        assert set(CONCURRENCY_RULES) == {"REPRO013", "REPRO014", "REPRO015"}

    def test_syntax_error_propagates(self):
        with pytest.raises(SyntaxError):
            concurrency_check_source("def broken(:\n", Path("bad.py"))
