"""Tests for :mod:`repro.verify.allocs`: the allocation certifier.

The harness must be deterministic — budgets committed to
``BENCH_engine.json`` are only meaningful if a re-run reproduces them
bit-for-bit — and the disabled-telemetry paths it certifies must stay
allocation-free at the block level, matching the zero-overhead claims
the REPRO012 guard pattern rests on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.verify.allocs import (
    AllocationBudgetError,
    AllocationHarness,
    certify_budgets,
    measure_all,
    measure_disabled_telemetry,
    measure_prime_structure,
    measure_warm_plan_sweep,
    ratchet_ratio,
)


class TestHarness:
    def test_ctor_validation(self):
        with pytest.raises(ValueError):
            AllocationHarness(warmup=-1)
        with pytest.raises(ValueError):
            AllocationHarness(iterations=0)
        with pytest.raises(ValueError):
            AllocationHarness(repeats=0)

    def test_total_iterations(self):
        harness = AllocationHarness(warmup=1, iterations=100, repeats=3)
        assert harness.total_iterations == 300

    def test_measure_reports_footprint_fields(self):
        harness = AllocationHarness(warmup=10, iterations=100, repeats=2)
        footprint = harness.measure(lambda: None)
        assert set(footprint) == {"net_blocks", "net_bytes", "peak_bytes"}
        assert footprint["net_blocks"] <= 2

    def test_measure_sees_retained_allocations(self):
        sink = []
        harness = AllocationHarness(warmup=0, iterations=100, repeats=1)
        footprint = harness.measure(lambda: sink.append({}))
        assert footprint["net_blocks"] >= 100
        assert footprint["peak_bytes"] > 0


class TestRatchetRatio:
    def test_within_budget_is_exactly_one(self):
        assert ratchet_ratio(0, 64) == 1.0
        assert ratchet_ratio(64, 64) == 1.0
        assert ratchet_ratio(-5, 64) == 1.0  # clamped

    def test_blown_budget_decays(self):
        assert ratchet_ratio(128, 64) == 0.5
        # >1.25x budget dips under repro ratchet's 20% tolerance floor.
        assert ratchet_ratio(81, 64) < 0.8

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            ratchet_ratio(1, 0)


class TestCertifyBudgets:
    def test_within_budgets_passes(self):
        measured = {"guard": {"net_blocks": 1, "peak_bytes": 128}}
        certify_budgets(measured, {"guard": {"net_blocks": 8}})

    def test_blown_budget_raises_with_detail(self):
        measured = {"guard": {"net_blocks": 40}}
        with pytest.raises(AllocationBudgetError) as exc:
            certify_budgets(measured, {"guard": {"net_blocks": 8}})
        assert "guard.net_blocks: 40 > budget 8" in str(exc.value)

    def test_missing_scenario_raises(self):
        with pytest.raises(AllocationBudgetError) as exc:
            certify_budgets({}, {"guard": {"net_blocks": 8}})
        assert "not measured" in str(exc.value)


class TestScenarios:
    def test_disabled_telemetry_is_allocation_free(self):
        harness = AllocationHarness(warmup=500, iterations=5_000, repeats=2)
        results = measure_disabled_telemetry(harness)
        assert set(results) == {"guard", "publish", "counter_inc"}
        for name, footprint in results.items():
            # Same bar as the committed bench: noise-level block churn.
            assert footprint["net_blocks"] <= 8, (name, footprint)

    def test_warm_plan_sweep_retains_nothing(self):
        harness = AllocationHarness(warmup=4, iterations=24, repeats=2)
        footprint = measure_warm_plan_sweep(harness, tasks=128, queries=8)
        assert footprint["net_blocks"] <= 8
        assert footprint["peak_bytes"] > 0

    def test_prime_structure_retains_nothing(self):
        harness = AllocationHarness(warmup=4, iterations=24, repeats=2)
        footprint = measure_prime_structure(harness, tasks=64)
        assert footprint["net_blocks"] <= 8
        assert footprint["peak_bytes"] > 0

    def test_measure_all_merges_scenarios(self):
        telemetry = AllocationHarness(warmup=100, iterations=500, repeats=1)
        workload = AllocationHarness(warmup=2, iterations=8, repeats=1)
        results = measure_all(telemetry, workload)
        assert set(results) == {
            "disabled_guard",
            "disabled_publish",
            "disabled_counter_inc",
            "warm_plan_sweep",
            "prime_structure",
        }


@settings(max_examples=5, deadline=None)
@given(
    warmup=st.integers(min_value=32, max_value=256),
    iterations=st.integers(min_value=128, max_value=1_024),
    repeats=st.integers(min_value=1, max_value=2),
)
def test_disabled_telemetry_budgets_are_deterministic(
    warmup, iterations, repeats
):
    """The satellite property: identical harness -> identical budgets.

    Re-measuring the disabled-telemetry path with the same parameters
    must reproduce every field bit-for-bit — otherwise the committed
    ``BENCH_engine.json`` budgets would flap run to run.
    """
    harness = AllocationHarness(
        warmup=warmup, iterations=iterations, repeats=repeats
    )
    first = measure_disabled_telemetry(harness)
    second = measure_disabled_telemetry(harness)
    assert first == second
