"""Tests for the fork-isolated mutant sandbox (:mod:`repro.verify.sandbox`).

The sandbox carries the engine's central safety property: a mutated
module installed in a child must never leak into the orchestrating
process.  These tests exercise every verdict path (ok / crashed /
timeout / silent death) and then prove parent isolation directly by
installing a corrupted ``repro.core.temp_s`` inside a child and
checking the parent's bindings afterwards.
"""

import os
import textwrap
import time

from repro.core.temp_s import solution_weight
from repro.verify.sandbox import (
    SandboxResult,
    install_module_source,
    run_sandboxed,
    silenced_output,
)


def _add(a, b):
    return a + b


def _busy_loop():
    while True:
        time.sleep(0.01)


def _raises():
    raise ValueError("deliberate failure")


def _hard_exit():
    # Dies without sending a verdict: neither return nor exception.
    os._exit(3)


def _install_poisoned_temp_s():
    """Child-side: replace solution_weight with a constant and report
    what the *child* observes through its own direct import."""
    poisoned = textwrap.dedent(
        """
        from typing import Optional


        class SolutionNode:
            pass


        def solution_weight(sol):
            return -1.0
        """
    )
    install_module_source("repro.core.temp_s", poisoned)
    import repro.core.temp_s as mod

    return (mod.solution_weight(None), solution_weight(None))


class TestVerdicts:
    def test_ok_returns_value(self):
        result = run_sandboxed(_add, (2, 3), timeout_s=30.0)
        assert result.status == "ok"
        assert result.value == 5

    def test_timeout_kills_busy_child(self):
        start = time.monotonic()
        result = run_sandboxed(_busy_loop, (), timeout_s=1.0)
        elapsed = time.monotonic() - start
        assert result.status == "timeout"
        assert "1" in str(result.value)
        # The child must actually be reaped, not left running.
        assert elapsed < 15.0

    def test_exception_reports_crashed_with_message(self):
        result = run_sandboxed(_raises, (), timeout_s=30.0)
        assert result.status == "crashed"
        assert "ValueError" in result.value
        assert "deliberate failure" in result.value

    def test_silent_death_reports_crashed(self):
        result = run_sandboxed(_hard_exit, (), timeout_s=30.0)
        assert result.status == "crashed"
        assert "without verdict" in result.value

    def test_repr_is_informative(self):
        assert "timeout" in repr(SandboxResult("timeout", "deadline"))


class TestIsolation:
    def test_install_module_source_stays_in_child(self):
        # Pristine value, observed in this (parent) process.
        assert solution_weight(None) == 0.0

        result = run_sandboxed(_install_poisoned_temp_s, (), timeout_s=60.0)
        assert result.status == "ok"
        via_module, via_direct_import = result.value
        # Inside the child both access paths saw the mutant: the module
        # attribute AND the stale `from ... import` binding (identity
        # patching rebinds direct imports too).
        assert via_module == -1.0
        assert via_direct_import == -1.0

        # The parent's module graph is untouched.
        assert solution_weight(None) == 0.0
        import repro.core.temp_s as mod

        assert mod.solution_weight(None) == 0.0
        # The queue class is still the real one, not the poisoned stub.
        assert hasattr(mod.TempSQueue, "update")


class TestSilencedOutput:
    def test_suppresses_fd_level_writes(self, tmp_path):
        # Run inside a child so the dup2 games can't disturb pytest's
        # own capture machinery; writes redirected to /dev/null must not
        # reach a real file even via the OS-level descriptor.
        target = tmp_path / "captured.txt"

        def _noisy():
            fd = os.open(str(target), os.O_WRONLY | os.O_CREAT)
            saved = os.dup(1)
            os.dup2(fd, 1)
            try:
                with silenced_output():
                    os.write(1, b"should vanish")
                    print("also vanishes", flush=True)  # repro-lint: disable=REPRO001 (exercising fd-level capture)
                os.write(1, b"visible")
            finally:
                os.dup2(saved, 1)
                os.close(saved)
                os.close(fd)
            return "done"

        result = run_sandboxed(_noisy, (), timeout_s=30.0)
        assert result.status == "ok"
        assert result.value == "done"
        assert target.read_text() == "visible"
