"""Tests for :mod:`repro.verify.contracts`: grammar, decorator, AST pass."""

from pathlib import Path

import pytest

from repro.verify.contracts import (
    REQUIRED_CONTRACTS,
    BudgetSyntaxError,
    ComplexityBudget,
    check_contracts,
    check_contracts_source,
    complexity,
    get_contract,
    registered_contracts,
)

SRC_ROOT = Path(__file__).resolve().parents[2] / "src"


def codes(source: str, path: str) -> list:
    return [f.code for f in check_contracts_source(source, Path(path))]


class TestBudgetGrammar:
    @pytest.mark.parametrize(
        "text",
        ["n", "n log n", "n + p log q", "n^2", "m n^2", "2^n n", "n c",
         "l n + l p log q", "n s^2", "log n", "3 n"],
    )
    def test_parses(self, text):
        assert ComplexityBudget.parse(text) is not None

    @pytest.mark.parametrize("text", ["", "+", "n +", "n!", "O(n)", "n log"])
    def test_rejects(self, text):
        with pytest.raises(BudgetSyntaxError):
            ComplexityBudget.parse(text)

    def test_canonical_ignores_order_and_constants(self):
        a = ComplexityBudget.parse("p log q + n")
        b = ComplexityBudget.parse("n + 2 log q p")
        assert a.matches(b)

    def test_different_shapes_do_not_match(self):
        assert not ComplexityBudget.parse("n log n").matches(
            ComplexityBudget.parse("n + p log q")
        )

    def test_try_parse_handles_log_call_and_dots(self):
        budget = ComplexityBudget.try_parse("n · log(n)")
        assert budget is not None
        assert budget.matches(ComplexityBudget.parse("n log n"))

    def test_try_parse_rejects_structured_claims(self):
        assert ComplexityBudget.try_parse("sum_i |P_i|") is None
        assert ComplexityBudget.try_parse("L (n + p log q)") is None

    def test_variables(self):
        budget = ComplexityBudget.parse("n + p log q + 2^s c")
        assert budget.variables() == frozenset({"n", "p", "q", "s", "c"})


class TestEvaluate:
    def test_linear(self):
        assert ComplexityBudget.parse("n").evaluate(n=64) == 64.0

    def test_sum_of_products(self):
        budget = ComplexityBudget.parse("n + p log q")
        assert budget.evaluate(n=100, p=10, q=4) == 100 + 10 * 2.0

    def test_log_of_at_most_one_is_zero_term(self):
        budget = ComplexityBudget.parse("n + p log q")
        assert budget.evaluate(n=100, p=10, q=1) == 100.0

    def test_floor_at_one(self):
        assert ComplexityBudget.parse("p log q").evaluate(p=5, q=1) == 1.0

    def test_exponential(self):
        assert ComplexityBudget.parse("2^n").evaluate(n=10) == 1024.0

    def test_power(self):
        assert ComplexityBudget.parse("n^2").evaluate(n=9) == 81.0


class TestDecorator:
    def test_attaches_contract_and_registers(self):
        @complexity("n log n", counters=("steps",))
        def solver_under_test(x):
            return x

        contract = get_contract(solver_under_test)
        assert contract is not None
        assert contract.budget.matches(ComplexityBudget.parse("n log n"))
        assert contract.counters == ("steps",)
        assert solver_under_test(3) == 3  # unchanged function object
        assert contract.qualname in registered_contracts()

    def test_bad_budget_raises_at_decoration_time(self):
        with pytest.raises(BudgetSyntaxError):
            complexity("n!")

    def test_real_solvers_carry_contracts(self):
        from repro.baselines.nicol import bandwidth_min_nlogn
        from repro.core.bandwidth import bandwidth_min

        assert get_contract(bandwidth_min).budget.matches(
            ComplexityBudget.parse("n + p log q")
        )
        assert get_contract(bandwidth_min_nlogn).budget.matches(
            ComplexityBudget.parse("n log n")
        )


REQUIRED_FILE = "src/repro/core/bandwidth.py"


class TestRepro010MissingContract:
    def test_required_function_without_decorator(self):
        src = "def bandwidth_min(chain, bound):\n    pass\n"
        assert codes(src, REQUIRED_FILE) == ["REPRO010"]

    def test_required_function_with_decorator_clean(self):
        src = (
            "@complexity('n + p log q')\n"
            "def bandwidth_min(chain, bound):\n    pass\n"
        )
        assert codes(src, REQUIRED_FILE) == []

    def test_unrequired_function_not_flagged(self):
        assert codes("def helper():\n    pass\n", REQUIRED_FILE) == []

    def test_unrequired_file_not_flagged(self):
        src = "def bandwidth_min(chain, bound):\n    pass\n"
        assert codes(src, "src/repro/analysis/report.py") == []

    def test_pragma_suppresses(self):
        src = (
            "def bandwidth_min(c, b):  # repro-lint: disable=REPRO010\n"
            "    pass\n"
        )
        assert codes(src, REQUIRED_FILE) == []


class TestRepro011DocstringDisagreement:
    def test_contradicting_docstring_flagged(self):
        src = (
            "@complexity('n log n')\n"
            "def f(x):\n"
            '    """Runs in O(n^2)."""\n'
        )
        assert codes(src, "src/repro/core/x.py") == ["REPRO011"]

    def test_matching_claim_clears(self):
        src = (
            "@complexity('n + p log q')\n"
            "def f(x):\n"
            '    """O(n + p log q), versus O(n log n) for the baseline."""\n'
        )
        assert codes(src, "src/repro/core/x.py") == []

    def test_unparseable_claims_ignored(self):
        src = (
            "@complexity('n + r q')\n"
            "def f(x):\n"
            '    """Costs O(sum_i |P_i|) in this naive form."""\n'
        )
        assert codes(src, "src/repro/core/x.py") == []

    def test_no_docstring_clean(self):
        src = "@complexity('n')\ndef f(x):\n    pass\n"
        assert codes(src, "src/repro/core/x.py") == []

    def test_unparseable_declared_budget_flagged(self):
        # Via the AST (a string the runtime decorator would reject).
        src = "@complexity('n!')\ndef f(x):\n    pass\n"
        assert codes(src, "src/repro/core/x.py") == ["REPRO011"]


class TestDriver:
    def test_src_tree_is_clean(self):
        findings, checked = check_contracts([SRC_ROOT])
        assert checked > 50
        assert findings == [], [f.render() for f in findings]

    def test_every_required_file_exists(self):
        for suffix in REQUIRED_CONTRACTS:
            assert (SRC_ROOT.parent / "src" / suffix.replace("repro/", "repro/", 1)).parent.exists()
            matches = list(SRC_ROOT.rglob(Path(suffix).name))
            assert matches, f"no file matches {suffix}"
