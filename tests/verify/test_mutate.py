"""Tests for the mutation-analysis engine (:mod:`repro.verify.mutate`).

Covers the pure pieces (score math, baseline gate, report schema) plus
a small end-to-end run proving that seeded sampling and the emitted
JSON are deterministic under a fixed seed — the property the CI
baseline diff gate depends on.
"""

import json

import pytest

from repro.cli import main
from repro.verify.mutate import (
    KILL_LAYERS,
    PACKAGE_THRESHOLDS,
    SCHEMA_VERSION,
    TARGETS,
    UnknownModuleError,
    compare_to_baseline,
    run_mutation_analysis,
    _score,
)

MODULE = "repro.core.bottleneck"


@pytest.fixture(scope="module")
def twin_reports():
    """Two independent budgeted runs with the same seed (no pytest
    layer: nested pytest inside pytest workers is needlessly fragile
    and the remaining layers exercise the full sandbox path)."""
    kwargs = dict(modules=[MODULE], budget=3, seed=11, test_layer=False)
    return run_mutation_analysis(**kwargs), run_mutation_analysis(**kwargs)


class TestScoreMath:
    def test_score_rounding_and_empty_pool(self):
        assert _score(0, 0) == 1.0
        assert _score(3, 1) == 0.75
        assert _score(2, 1) == round(2 / 3, 4)

    def test_thresholds_cover_the_acceptance_packages(self):
        assert PACKAGE_THRESHOLDS["repro.core"] >= 0.85
        assert PACKAGE_THRESHOLDS["repro.engine"] >= 0.85
        assert PACKAGE_THRESHOLDS["repro.verify"] >= 0.85


class TestSelection:
    def test_unknown_module_rejected(self):
        with pytest.raises(UnknownModuleError, match="no.such.module"):
            run_mutation_analysis(modules=["no.such.module"])

    def test_zero_budget_samples_nothing_but_reports_schema(self):
        report = run_mutation_analysis(modules=[MODULE], budget=0, seed=1)
        assert report["version"] == SCHEMA_VERSION
        assert report["totals"]["sampled"] == 0
        assert report["totals"]["score"] == 1.0
        assert report["passed"] is True
        stats = report["modules"][MODULE]
        assert stats["sampled"] == 0
        # Site enumeration still ran: the pool existed before sampling.
        assert stats["sites"] > 0
        assert set(report["kills_by_layer"]) == set(KILL_LAYERS)

    def test_every_registered_target_has_tests_and_suites(self):
        for name, target in TARGETS.items():
            assert target.tests, name
            assert target.suites, name


class TestDeterminism:
    def test_same_seed_same_report(self, twin_reports):
        first, second = twin_reports
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_budget_respected_and_score_consistent(self, twin_reports):
        report, _ = twin_reports
        stats = report["modules"][MODULE]
        assert stats["sampled"] == 3
        assert stats["killed"] + stats["survived"] == 3
        assert stats["score"] == _score(stats["killed"], stats["survived"])
        totals = report["totals"]
        assert totals["score"] == _score(totals["killed"], totals["survived"])
        layer_kills = sum(report["kills_by_layer"].values())
        assert layer_kills == totals["killed"]

    def test_mutant_records_carry_triage_fields(self, twin_reports):
        report, _ = twin_reports
        for record in report["modules"][MODULE]["mutants"]:
            assert record["id"].startswith(f"{MODULE}::")
            assert record["status"] in ("killed", "survived")
            if record["status"] == "killed":
                assert record["layer"] in KILL_LAYERS
            assert record["line"] > 0


class TestBaselineGate:
    @staticmethod
    def _report(core=0.9, engine=0.95, total=0.92, core_sampled=10):
        return {
            "packages": {
                "repro.core": {"score": core, "sampled": core_sampled},
                "repro.engine": {"score": engine, "sampled": 12},
            },
            "totals": {"score": total},
        }

    def test_no_regression_passes(self):
        baseline = self._report()
        assert compare_to_baseline(self._report(), baseline) == []
        assert compare_to_baseline(self._report(core=0.95, total=0.93), baseline) == []

    def test_package_regression_fails(self):
        failures = compare_to_baseline(self._report(core=0.85), self._report())
        assert any("repro.core" in f and "regressed" in f for f in failures)

    def test_overall_regression_fails_when_all_packages_measured(self):
        failures = compare_to_baseline(self._report(total=0.80), self._report())
        assert any("overall" in f for f in failures)

    def test_partial_run_skips_overall_gate(self):
        # A --modules run that re-measures only repro.engine must not
        # trip the overall gate (its total covers a different universe),
        # but missing packages also must not count as regressions.
        partial = {
            "packages": {"repro.engine": {"score": 0.95, "sampled": 12}},
            "totals": {"score": 0.10},
        }
        assert compare_to_baseline(partial, self._report()) == []

    def test_unsampled_package_treated_as_missing(self):
        current = self._report(core=0.0, core_sampled=0, total=0.5)
        assert compare_to_baseline(current, self._report()) == []

    def test_cli_exit_code_fails_on_regression(self, tmp_path, monkeypatch, capsys):
        # End-to-end through the CLI (engine monkeypatched so no
        # sandbox forks): a score drop against --baseline must flip the
        # exit code and surface the regression in the report.
        fake = {
            "version": SCHEMA_VERSION,
            "packages": {"repro.core": {"score": 0.80, "sampled": 9}},
            "totals": {"score": 0.80},
            "failures": [],
            "passed": True,
        }
        monkeypatch.setattr(
            "repro.verify.mutate.run_mutation_analysis", lambda **kw: fake
        )
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(self._report(core=0.9, total=0.9)))
        rc = main(["mutate", "--json", "--quiet", "--baseline", str(baseline)])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["passed"] is False
        assert any("regressed" in f for f in payload["failures"])


class TestJsonSchemas:
    def test_analyze_json_is_versioned(self, capsys):
        rc = main(["analyze", "--json", "src/repro/core/temp_s.py"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["version"] == 1
        assert payload["passed"] is True
        assert "contracts" in payload and "flow" in payload

    def test_mutate_report_is_versioned(self, twin_reports):
        report, _ = twin_reports
        assert report["version"] == SCHEMA_VERSION
        for key in ("seed", "budget", "modules", "packages", "totals",
                    "kills_by_layer", "failures", "passed"):
            assert key in report
