"""Unit tests for :mod:`repro.graphs.serialization`."""

import json

import pytest

from repro.graphs.generators import random_chain, random_tree
from repro.graphs.serialization import (
    chain_from_dict,
    chain_to_dict,
    graph_from_dict,
    graph_to_dict,
)
from repro.graphs.task_graph import TaskGraph
from repro.graphs.tree import Tree


class TestChainRoundTrip:
    def test_round_trip(self, small_chain):
        assert chain_from_dict(chain_to_dict(small_chain)) == small_chain

    def test_json_round_trip(self):
        chain = random_chain(50, 3)
        payload = json.dumps(chain_to_dict(chain))
        assert chain_from_dict(json.loads(payload)) == chain

    def test_rejects_wrong_type(self):
        with pytest.raises(ValueError, match="not a chain"):
            chain_from_dict({"type": "tree"})


class TestGraphRoundTrip:
    def test_graph_round_trip(self):
        graph = TaskGraph([1, 2, 3], [(0, 1), (1, 2)], [5, 6])
        restored = graph_from_dict(graph_to_dict(graph))
        assert restored == graph
        assert not isinstance(restored, Tree)

    def test_tree_round_trip_preserves_type(self):
        tree = random_tree(20, 3)
        restored = graph_from_dict(graph_to_dict(tree))
        assert isinstance(restored, Tree)
        assert restored == tree

    def test_json_safe(self):
        tree = random_tree(10, 1)
        payload = json.dumps(graph_to_dict(tree))
        assert graph_from_dict(json.loads(payload)) == tree

    def test_rejects_unknown_type(self):
        with pytest.raises(ValueError, match="unknown"):
            graph_from_dict({"type": "hypergraph", "edges": []})
