"""Unit tests for :mod:`repro.graphs.workloads`."""

import random

import pytest

from repro.core.bandwidth import bandwidth_min
from repro.core.ring import ring_bandwidth_min
from repro.baselines.greedy import first_fit_cut
from repro.graphs.workloads import (
    image_pipeline_chain,
    iterative_solver_ring,
    pde_strip_chain,
    signal_chain,
)


class TestPdeStrips:
    def test_shape(self):
        chain = pde_strip_chain(20, 50, random.Random(1))
        assert chain.num_tasks == 20
        assert all(a > 0 for a in chain.alpha)

    def test_hotspot_concentrates_weight(self):
        flat = pde_strip_chain(40, 50, random.Random(2))
        hot = pde_strip_chain(40, 50, random.Random(2), hotspot=0.5)
        mid = slice(15, 25)
        assert sum(hot.alpha[mid]) > 1.5 * sum(flat.alpha[mid])

    def test_validation(self):
        with pytest.raises(ValueError):
            pde_strip_chain(0, 10)

    def test_partitionable(self):
        chain = pde_strip_chain(64, 100, random.Random(3), hotspot=0.3)
        bound = 2.0 * chain.max_vertex_weight()
        result = bandwidth_min(chain, bound)
        assert result.is_feasible(bound)


class TestImagePipeline:
    def test_default_pipeline(self):
        chain = image_pipeline_chain()
        assert chain.num_tasks == 9
        # Volumes shrink towards the end of the default pipeline.
        assert chain.beta[0] > chain.beta[-1]

    def test_custom_stages(self):
        chain = image_pipeline_chain([("a", 1.0, 5.0), ("b", 2.0, 0.0)])
        assert chain.alpha == [1.0, 2.0]
        assert chain.beta == [5.0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            image_pipeline_chain([])

    def test_cuts_prefer_cheap_late_edges(self):
        chain = image_pipeline_chain()
        bound = 0.6 * chain.total_weight()
        result = bandwidth_min(chain, bound)
        # With shrinking volumes, the optimal single cut sits late.
        assert result.cut_indices
        assert min(result.cut_indices) >= 3


class TestSignalChain:
    def test_decimation_profile(self):
        chain = signal_chain(33, decimation_every=8, rng=random.Random(4))
        # The last edge has seen 3 halvings: ~8x below the start.
        assert chain.beta[0] > 5 * chain.beta[-1]

    def test_bandwidth_beats_first_fit_strongly(self):
        chain = signal_chain(64, decimation_every=8, rng=random.Random(5))
        bound = 10.0 * chain.max_vertex_weight()
        smart = bandwidth_min(chain, bound)
        naive = first_fit_cut(chain, bound)
        assert smart.weight < naive.weight

    def test_validation(self):
        with pytest.raises(ValueError):
            signal_chain(0)


class TestSolverRing:
    def test_shape(self):
        ring = iterative_solver_ring(16, random.Random(6))
        assert ring.num_tasks == 16

    def test_partitionable(self):
        ring = iterative_solver_ring(32, random.Random(7))
        bound = 3.0 * ring.max_vertex_weight()
        result = ring_bandwidth_min(ring, bound)
        assert result.is_feasible(bound)

    def test_validation(self):
        with pytest.raises(ValueError):
            iterative_solver_ring(2)
