"""Unit tests for :mod:`repro.graphs.partition`."""

import pytest

from repro.graphs.partition import (
    Cut,
    Partition,
    blocks_as_ranges,
    chain_blocks_to_assignment,
    cut_from_chain_indices,
)
from repro.graphs.task_graph import TaskGraph


@pytest.fixture
def path_graph():
    return TaskGraph([4, 3, 5, 2, 6], [(0, 1), (1, 2), (2, 3), (3, 4)], [7, 1, 9, 2])


class TestCut:
    def test_empty_cut(self, path_graph):
        cut = Cut(path_graph, [])
        assert len(cut) == 0
        assert cut.bottleneck() == 0.0
        assert cut.bandwidth() == 0.0

    def test_objectives(self, path_graph):
        cut = Cut(path_graph, [(1, 2), (3, 4)])
        assert cut.bandwidth() == 3
        assert cut.bottleneck() == 2
        assert (1, 2) in cut
        assert (2, 1) in cut
        assert (0, 1) not in cut

    def test_canonicalizes(self, path_graph):
        assert Cut(path_graph, [(2, 1)]) == Cut(path_graph, [(1, 2)])

    def test_rejects_foreign_edges(self, path_graph):
        with pytest.raises(ValueError, match="not in the graph"):
            Cut(path_graph, [(0, 4)])

    def test_feasibility(self, path_graph):
        assert Cut(path_graph, [(1, 2), (3, 4)]).is_feasible(9)
        assert not Cut(path_graph, []).is_feasible(9)

    def test_iteration_sorted(self, path_graph):
        cut = Cut(path_graph, [(3, 4), (0, 1)])
        assert list(cut) == [(0, 1), (3, 4)]

    def test_hashable(self, path_graph):
        assert {Cut(path_graph, [(0, 1)])}


class TestPartition:
    def test_components_and_weights(self, path_graph):
        partition = Cut(path_graph, [(1, 2), (3, 4)]).partition()
        assert partition.num_processors == 3
        assert sorted(partition.component_weights) == [6, 7, 7]
        assert partition.max_component_weight() == 7

    def test_single_component(self, path_graph):
        partition = Cut(path_graph, []).partition()
        assert partition.num_processors == 1
        assert partition.component_weights == [20]

    def test_satisfies_bound(self, path_graph):
        partition = Cut(path_graph, [(1, 2), (3, 4)]).partition()
        assert partition.satisfies_bound(7)
        assert not partition.satisfies_bound(6.9)

    def test_load_imbalance(self, path_graph):
        partition = Cut(path_graph, [(1, 2), (3, 4)]).partition()
        assert partition.load_imbalance() == pytest.approx(7 / (20 / 3))

    def test_component_of(self, path_graph):
        partition = Cut(path_graph, [(1, 2)]).partition()
        owner = partition.component_of()
        assert owner[0] == owner[1]
        assert owner[2] == owner[3] == owner[4]
        assert owner[0] != owner[2]

    def test_mismatched_graph_rejected(self, path_graph):
        other = TaskGraph([1, 1], [(0, 1)])
        cut = Cut(other, [(0, 1)])
        with pytest.raises(ValueError, match="different graph"):
            Partition(path_graph, cut)


class TestHelpers:
    def test_cut_from_chain_indices(self, path_graph):
        cut = cut_from_chain_indices(path_graph, [1, 3])
        assert cut.edges == frozenset({(1, 2), (3, 4)})

    def test_chain_blocks_to_assignment(self, small_chain):
        assignment = chain_blocks_to_assignment(small_chain, [1, 3])
        assert assignment == [0, 0, 1, 1, 2]

    def test_blocks_as_ranges(self):
        assert blocks_as_ranges([(0, 1), (2, 4)]) == "[0..1 | 2..4]"
