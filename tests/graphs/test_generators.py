"""Unit tests for :mod:`repro.graphs.generators`."""

import random

import pytest

from repro.graphs.generators import (
    balanced_binary_tree,
    bound_for_ratio,
    caterpillar_tree,
    figure2_chain,
    pipeline_chain,
    random_chain,
    random_star,
    random_tree,
    uniform_chain,
)


class TestRandomChain:
    def test_size_and_ranges(self):
        chain = random_chain(50, 1, vertex_range=(2, 5), edge_range=(1, 3))
        assert chain.num_tasks == 50
        assert all(2 <= a <= 5 for a in chain.alpha)
        assert all(1 <= b <= 3 for b in chain.beta)

    def test_deterministic_by_seed(self):
        a = random_chain(30, 42)
        b = random_chain(30, 42)
        assert a == b

    def test_different_seeds_differ(self):
        assert random_chain(30, 1) != random_chain(30, 2)

    def test_integer_weights(self):
        chain = random_chain(40, 3, integer_weights=True)
        assert all(a == int(a) for a in chain.alpha)
        assert all(b == int(b) for b in chain.beta)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            random_chain(0)

    def test_accepts_random_instance(self):
        rng = random.Random(9)
        chain = random_chain(10, rng)
        assert chain.num_tasks == 10

    def test_single_task(self):
        chain = random_chain(1, 0)
        assert chain.num_edges == 0


class TestUniformAndPipeline:
    def test_uniform_chain(self):
        chain = uniform_chain(5, vertex_weight=2.0, edge_weight=3.0)
        assert chain.alpha == [2.0] * 5
        assert chain.beta == [3.0] * 4

    def test_pipeline_chain(self):
        chain = pipeline_chain([1, 2, 3], [10, 20])
        assert chain.alpha == [1, 2, 3]
        assert chain.beta == [10, 20]


class TestRandomTree:
    @pytest.mark.parametrize("attachment", ["uniform", "preferential", "path"])
    def test_valid_tree(self, attachment):
        tree = random_tree(40, 5, attachment=attachment)
        assert tree.is_tree()
        assert tree.num_vertices == 40

    def test_path_attachment_is_path(self):
        tree = random_tree(20, 5, attachment="path")
        assert max(tree.degree(v) for v in range(20)) <= 2

    def test_unknown_attachment(self):
        with pytest.raises(ValueError, match="attachment"):
            random_tree(10, 0, attachment="bogus")

    def test_single_vertex(self):
        assert random_tree(1, 0).num_vertices == 1

    def test_deterministic(self):
        assert random_tree(25, 7) == random_tree(25, 7)


class TestSpecialTrees:
    def test_random_star(self):
        star = random_star(8, 1)
        assert star.is_star()
        assert star.num_vertices == 9

    def test_balanced_binary(self):
        tree = balanced_binary_tree(3, 1)
        assert tree.num_vertices == 15
        assert tree.is_tree()
        assert tree.degree(0) == 2

    def test_caterpillar(self):
        tree = caterpillar_tree(4, 3, 1)
        assert tree.num_vertices == 16
        assert tree.is_tree()
        assert len(tree.leaves()) >= 12

    def test_caterpillar_rejects_empty_spine(self):
        with pytest.raises(ValueError):
            caterpillar_tree(0, 3)


class TestFigure2Family:
    def test_weight_range(self):
        chain = figure2_chain(100, w_max=50.0, rng=4)
        assert all(1.0 <= a <= 50.0 for a in chain.alpha)

    def test_bound_for_ratio(self):
        chain = figure2_chain(100, 10.0, rng=4)
        bound = bound_for_ratio(chain, 3.0)
        assert bound == pytest.approx(3.0 * chain.max_vertex_weight())

    def test_bound_for_ratio_rejects_small(self):
        chain = figure2_chain(10, 10.0, rng=4)
        with pytest.raises(ValueError, match="exceed"):
            bound_for_ratio(chain, 1.0)
