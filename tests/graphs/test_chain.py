"""Unit tests for :mod:`repro.graphs.chain`."""

import pytest

from repro.graphs.chain import Chain
from repro.graphs.task_graph import TaskGraph


class TestConstruction:
    def test_basic(self, small_chain):
        assert small_chain.num_tasks == 5
        assert small_chain.num_edges == 4
        assert small_chain.total_weight() == 20

    def test_single_task(self):
        chain = Chain([3.0], [])
        assert chain.num_tasks == 1
        assert chain.num_edges == 0

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one task"):
            Chain([], [])

    def test_rejects_wrong_edge_count(self):
        with pytest.raises(ValueError, match="edge weights"):
            Chain([1, 2], [1, 2])

    def test_rejects_non_positive_vertex(self):
        with pytest.raises(ValueError, match="non-positive"):
            Chain([1, 0], [1])

    def test_rejects_negative_edge(self):
        with pytest.raises(ValueError, match="negative"):
            Chain([1, 2], [-1])

    def test_zero_edge_weight_allowed(self):
        chain = Chain([1, 2], [0.0])
        assert chain.edge_weight(0) == 0.0


class TestSegments:
    def test_segment_weight(self, small_chain):
        assert small_chain.segment_weight(0, 0) == 4
        assert small_chain.segment_weight(0, 4) == 20
        assert small_chain.segment_weight(1, 3) == 10

    def test_segment_out_of_range(self, small_chain):
        with pytest.raises(IndexError):
            small_chain.segment_weight(0, 5)
        with pytest.raises(IndexError):
            small_chain.segment_weight(3, 2)

    def test_prefix_weights(self, small_chain):
        assert small_chain.prefix_weights() == [0, 4, 7, 12, 14, 20]

    def test_max_vertex_weight(self, small_chain):
        assert small_chain.max_vertex_weight() == 6


class TestCuts:
    def test_empty_cut_single_block(self, small_chain):
        assert small_chain.cut_components([]) == [(0, 4)]

    def test_cut_blocks(self, small_chain):
        assert small_chain.cut_components([1, 3]) == [(0, 1), (2, 3), (4, 4)]

    def test_cut_all_edges(self, small_chain):
        blocks = small_chain.cut_components([0, 1, 2, 3])
        assert blocks == [(0, 0), (1, 1), (2, 2), (3, 3), (4, 4)]

    def test_duplicate_cut_indices_ignored(self, small_chain):
        assert small_chain.cut_components([1, 1]) == [(0, 1), (2, 4)]

    def test_cut_index_out_of_range(self, small_chain):
        with pytest.raises(IndexError):
            small_chain.cut_components([4])

    def test_component_weights(self, small_chain):
        assert small_chain.component_weights([1, 3]) == [7, 7, 6]

    def test_cut_weight(self, small_chain):
        assert small_chain.cut_weight([1, 3]) == 3
        assert small_chain.cut_weight([]) == 0

    def test_is_feasible_cut(self, small_chain):
        assert small_chain.is_feasible_cut([1, 3], 9)
        assert not small_chain.is_feasible_cut([], 9)
        assert small_chain.is_feasible_cut([], 20)


class TestConversions:
    def test_round_trip_via_task_graph(self, small_chain):
        graph = small_chain.to_task_graph()
        assert graph.is_path()
        back = Chain.from_task_graph(graph)
        assert back == small_chain

    def test_task_graph_weights(self, small_chain):
        graph = small_chain.to_task_graph()
        assert graph.vertex_weight(2) == 5
        assert graph.edge_weight(2, 3) == 9

    def test_from_task_graph_rejects_non_path(self):
        star = TaskGraph([1] * 4, [(0, 1), (0, 2), (0, 3)])
        with pytest.raises(ValueError, match="not a simple path"):
            Chain.from_task_graph(star)

    def test_from_task_graph_relabels(self):
        # Path 2 - 0 - 1 with distinct weights.
        graph = TaskGraph([5, 7, 3], [(0, 2), (0, 1)], [10, 20])
        chain = Chain.from_task_graph(graph)
        assert chain.alpha == [7, 5, 3]  # starts at lowest-id endpoint (1)
        assert chain.beta == [20, 10]

    def test_single_vertex_from_task_graph(self):
        chain = Chain.from_task_graph(TaskGraph([4.0]))
        assert chain.num_tasks == 1
        assert chain.alpha == [4.0]

    def test_equality(self, small_chain):
        assert small_chain == Chain([4, 3, 5, 2, 6], [7, 1, 9, 2])
        assert small_chain != Chain([4, 3, 5, 2, 7], [7, 1, 9, 2])
