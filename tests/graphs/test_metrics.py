"""Unit tests for :mod:`repro.graphs.metrics`."""

import pytest

from repro.graphs.metrics import (
    compare_assignments,
    evaluate_assignment,
    pairwise_flows,
)
from repro.graphs.task_graph import TaskGraph


@pytest.fixture
def graph():
    return TaskGraph(
        [4, 3, 5, 2],
        [(0, 1), (1, 2), (2, 3), (0, 3)],
        [10, 20, 30, 40],
    )


class TestEvaluateAssignment:
    def test_single_component(self, graph):
        m = evaluate_assignment(graph, [0, 0, 0, 0])
        assert m.num_components == 1
        assert m.external_bandwidth == 0
        assert m.internal_bandwidth == 100
        assert m.max_load == 14

    def test_split(self, graph):
        m = evaluate_assignment(graph, [0, 0, 1, 1])
        assert m.num_components == 2
        assert m.component_loads == (7, 7)
        assert m.external_bandwidth == 20 + 40
        assert m.internal_bandwidth == 10 + 30
        assert m.bottleneck_flow == 60  # single pair (0,1)

    def test_three_way_bottleneck(self, graph):
        m = evaluate_assignment(graph, [0, 1, 1, 2])
        assert m.num_components == 3
        assert m.bottleneck_flow == 40  # pair (0,2) via edge (0,3)

    def test_imbalance(self, graph):
        m = evaluate_assignment(graph, [0, 0, 0, 1])
        assert m.load_imbalance == pytest.approx(12 / 7)

    def test_communication_fraction(self, graph):
        m = evaluate_assignment(graph, [0, 0, 1, 1])
        assert m.communication_fraction == pytest.approx(0.6)

    def test_rejects_short_assignment(self, graph):
        with pytest.raises(ValueError):
            evaluate_assignment(graph, [0, 0, 1])


class TestPairwiseFlows:
    def test_flows(self, graph):
        flows = pairwise_flows(graph, [0, 1, 1, 0])
        assert flows == {(0, 1): 10 + 30}

    def test_no_cross_edges(self, graph):
        assert pairwise_flows(graph, [0, 0, 0, 0]) == {}


class TestCompare:
    def test_sorted_by_external(self, graph):
        rows = compare_assignments(
            graph,
            {
                "all-one": [0, 0, 0, 0],
                "halves": [0, 0, 1, 1],
            },
        )
        assert rows[0][0] == "all-one"
        assert rows[1][1].external_bandwidth == 60
