"""Unit tests for :mod:`repro.graphs.tree`."""

import pytest

from repro.graphs.task_graph import TaskGraph
from repro.graphs.tree import Tree


class TestConstruction:
    def test_valid_tree(self, small_tree):
        assert small_tree.num_vertices == 7
        assert small_tree.num_edges == 6
        assert small_tree.is_tree()

    def test_single_vertex(self):
        t = Tree([5.0], [])
        assert t.num_vertices == 1
        assert t.leaves() == [0]

    def test_rejects_disconnected(self):
        with pytest.raises(ValueError, match="not a tree"):
            Tree([1, 1, 1], [(0, 1)])

    def test_rejects_cycle(self):
        with pytest.raises(ValueError, match="not a tree"):
            Tree([1, 1, 1], [(0, 1), (1, 2), (0, 2)])

    def test_from_task_graph(self, small_tree):
        graph = TaskGraph(
            small_tree.vertex_weights,
            list(small_tree.edges()),
            small_tree.edge_weight_map(),
        )
        assert Tree.from_task_graph(graph) == small_tree

    def test_from_task_graph_rejects_non_tree(self):
        with pytest.raises(ValueError):
            Tree.from_task_graph(TaskGraph([1, 1], []))


class TestTraversal:
    def test_bfs_order_covers_all(self, small_tree):
        order, parent = small_tree.bfs_order(0)
        assert sorted(order) == list(range(7))
        assert parent[0] == -1
        assert parent[6] == 5

    def test_bfs_from_other_root(self, small_tree):
        order, parent = small_tree.bfs_order(6)
        assert order[0] == 6
        assert parent[6] == -1
        assert parent[5] == 6

    def test_post_order_children_first(self, small_tree):
        order, parent = small_tree.post_order(0)
        position = {v: i for i, v in enumerate(order)}
        for v in range(7):
            if parent[v] >= 0:
                assert position[v] < position[parent[v]]

    def test_subtree_weights(self, small_tree):
        weights = small_tree.subtree_weights(0)
        assert weights[0] == 28  # whole tree
        assert weights[1] == 12  # 4 + 2 + 6
        assert weights[5] == 8  # 1 + 7
        assert weights[6] == 7


class TestLeafStructure:
    def test_leaves(self, small_tree):
        assert sorted(small_tree.leaves()) == [3, 4, 6]

    def test_internal_vertices(self, small_tree):
        assert sorted(small_tree.internal_vertices()) == [0, 1, 2, 5]

    def test_is_star(self, star_tree, small_tree):
        assert star_tree.is_star()
        assert not small_tree.is_star()
        assert Tree([1, 1], [(0, 1)]).is_star()

    def test_star_constructor(self):
        star = Tree.star(1.0, [2, 3], [5, 6])
        assert star.num_vertices == 3
        assert star.vertex_weight(0) == 1.0
        assert star.edge_weight(0, 2) == 6

    def test_star_rejects_mismatch(self):
        with pytest.raises(ValueError):
            Tree.star(1.0, [2, 3], [5])


class TestContraction:
    def test_contract_empty_cut(self, small_tree):
        super_tree, comps, origin = small_tree.contract_components(set())
        assert super_tree.num_vertices == 1
        assert super_tree.vertex_weight(0) == 28
        assert origin == {}
        assert sorted(comps[0]) == list(range(7))

    def test_contract_single_edge(self, small_tree):
        super_tree, comps, origin = small_tree.contract_components({(0, 2)})
        assert super_tree.num_vertices == 2
        assert sorted(super_tree.vertex_weights) == [13, 15]
        # Super edge weight = original edge weight.
        (edge,) = list(super_tree.edges())
        assert super_tree.edge_weight(*edge) == 20
        assert origin[edge] == (0, 2)

    def test_contract_preserves_tree(self, small_tree):
        cut = {(0, 1), (2, 5), (5, 6)}
        super_tree, comps, origin = small_tree.contract_components(cut)
        assert super_tree.is_tree()
        assert super_tree.num_vertices == 4
        assert super_tree.total_vertex_weight() == 28
        assert set(origin.values()) == cut

    def test_contract_rejects_foreign_edge(self, small_tree):
        with pytest.raises(ValueError, match="not present"):
            small_tree.contract_components({(0, 6)})
