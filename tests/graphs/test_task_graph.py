"""Unit tests for :mod:`repro.graphs.task_graph`."""

import pytest

from repro.graphs.task_graph import TaskGraph, canonical_edge


class TestCanonicalEdge:
    def test_orders_endpoints(self):
        assert canonical_edge(3, 1) == (1, 3)
        assert canonical_edge(1, 3) == (1, 3)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            canonical_edge(2, 2)


class TestConstruction:
    def test_empty_graph(self):
        g = TaskGraph([])
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_vertices_only(self):
        g = TaskGraph([1.0, 2.0, 3.0])
        assert g.num_vertices == 3
        assert g.vertex_weight(1) == 2.0
        assert g.total_vertex_weight() == 6.0

    def test_edges_with_sequence_weights(self):
        g = TaskGraph([1, 1, 1], [(0, 1), (1, 2)], [5.0, 7.0])
        assert g.edge_weight(0, 1) == 5.0
        assert g.edge_weight(2, 1) == 7.0

    def test_edges_with_dict_weights(self):
        g = TaskGraph([1, 1], [(1, 0)], {(0, 1): 4.0})
        assert g.edge_weight(0, 1) == 4.0

    def test_default_edge_weight_is_one(self):
        g = TaskGraph([1, 1], [(0, 1)])
        assert g.edge_weight(0, 1) == 1.0

    def test_rejects_negative_vertex_weight(self):
        with pytest.raises(ValueError, match="negative weight"):
            TaskGraph([1.0, -2.0])

    def test_rejects_negative_edge_weight(self):
        with pytest.raises(ValueError, match="negative weight"):
            TaskGraph([1, 1], [(0, 1)], [-3.0])

    def test_rejects_duplicate_edge(self):
        with pytest.raises(ValueError, match="duplicate"):
            TaskGraph([1, 1], [(0, 1), (1, 0)])

    def test_rejects_out_of_range_edge(self):
        with pytest.raises(ValueError, match="out of range"):
            TaskGraph([1, 1], [(0, 5)])

    def test_mismatched_weight_count(self):
        with pytest.raises(ValueError, match="edge weights"):
            TaskGraph([1, 1, 1], [(0, 1), (1, 2)], [1.0])


class TestAccessors:
    def test_neighbors_and_degree(self):
        g = TaskGraph([1] * 4, [(0, 1), (0, 2), (0, 3)])
        assert sorted(g.neighbors(0)) == [1, 2, 3]
        assert g.degree(0) == 3
        assert g.degree(2) == 1

    def test_has_edge_both_orders(self):
        g = TaskGraph([1, 1], [(0, 1)])
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)

    def test_edges_iteration_canonical(self):
        g = TaskGraph([1] * 3, [(2, 1), (1, 0)])
        assert list(g.edges()) == [(1, 2), (0, 1)]

    def test_max_vertex_weight(self):
        assert TaskGraph([1, 9, 4]).max_vertex_weight() == 9
        assert TaskGraph([]).max_vertex_weight() == 0.0

    def test_total_edge_weight(self):
        g = TaskGraph([1, 1, 1], [(0, 1), (1, 2)], [2.5, 3.5])
        assert g.total_edge_weight() == 6.0


class TestComponents:
    def test_connected_whole(self):
        g = TaskGraph([1] * 4, [(0, 1), (1, 2), (2, 3)])
        assert g.is_connected()
        assert len(g.connected_components()) == 1

    def test_disconnected(self):
        g = TaskGraph([1] * 4, [(0, 1), (2, 3)])
        comps = g.connected_components()
        assert sorted(sorted(c) for c in comps) == [[0, 1], [2, 3]]

    def test_removed_edges_split(self):
        g = TaskGraph([1, 2, 3], [(0, 1), (1, 2)])
        comps = g.connected_components({(1, 2)})
        assert sorted(sorted(c) for c in comps) == [[0, 1], [2]]

    def test_component_weights(self):
        g = TaskGraph([1, 2, 3], [(0, 1), (1, 2)])
        assert sorted(g.component_weights({(0, 1)})) == [1, 5]

    def test_empty_removed_set(self):
        g = TaskGraph([1, 2], [(0, 1)])
        assert g.component_weights(set()) == [3]


class TestShapePredicates:
    def test_is_tree(self):
        assert TaskGraph([1] * 3, [(0, 1), (1, 2)]).is_tree()
        assert not TaskGraph([1] * 3, [(0, 1)]).is_tree()  # disconnected
        assert TaskGraph([1]).is_tree()  # single vertex

    def test_cycle_is_not_tree(self):
        g = TaskGraph([1] * 3, [(0, 1), (1, 2), (0, 2)])
        assert not g.is_tree()

    def test_is_path(self):
        assert TaskGraph([1] * 4, [(0, 1), (1, 2), (2, 3)]).is_path()
        assert TaskGraph([1]).is_path()
        star = TaskGraph([1] * 4, [(0, 1), (0, 2), (0, 3)])
        assert not star.is_path()

    def test_empty_graph_is_not_path(self):
        assert not TaskGraph([]).is_path()


class TestMisc:
    def test_copy_is_independent(self):
        g = TaskGraph([1, 1], [(0, 1)], [2.0])
        clone = g.copy()
        clone.add_edge
        assert clone == g
        assert clone is not g

    def test_equality(self):
        a = TaskGraph([1, 2], [(0, 1)], [3.0])
        b = TaskGraph([1, 2], [(0, 1)], [3.0])
        c = TaskGraph([1, 2], [(0, 1)], [4.0])
        assert a == b
        assert a != c

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(TaskGraph([1]))

    def test_repr(self):
        assert "n=2" in repr(TaskGraph([1, 2], [(0, 1)]))
