"""Unit tests for :mod:`repro.graphs.supergraph`."""

import pytest

from repro.graphs.supergraph import (
    bfs_linear_supergraph,
    order_linear_supergraph,
    ring_to_chain,
)
from repro.graphs.task_graph import TaskGraph


def grid_2x3():
    """A 2x3 grid graph:  0-1-2 / 3-4-5 with vertical rungs."""
    return TaskGraph(
        [1, 2, 3, 4, 5, 6],
        [(0, 1), (1, 2), (3, 4), (4, 5), (0, 3), (1, 4), (2, 5)],
        [10, 20, 30, 40, 50, 60, 70],
    )


class TestBfsSupergraph:
    def test_layers_from_corner(self):
        sg = bfs_linear_supergraph(grid_2x3(), source=0)
        # Layers: {0}, {1,3}, {2,4}, {5}
        assert [sorted(g) for g in sg.groups] == [[0], [1, 3], [2, 4], [5]]
        assert sg.exact

    def test_chain_weights(self):
        sg = bfs_linear_supergraph(grid_2x3(), source=0)
        assert sg.chain.alpha == [1, 6, 8, 6]
        # Boundary 0: edges (0,1)=10, (0,3)=50 -> 60.
        # Boundary 1: (1,2)=20, (1,4)=60, (3,4)=30 -> 110.
        # Boundary 2: (4,5)=40, (2,5)=70 -> 110.
        assert sg.chain.beta == [60, 110, 110]

    def test_total_weight_preserved(self):
        graph = grid_2x3()
        sg = bfs_linear_supergraph(graph)
        assert sg.chain.total_weight() == graph.total_vertex_weight()

    def test_rejects_disconnected(self):
        with pytest.raises(ValueError, match="connected"):
            bfs_linear_supergraph(TaskGraph([1, 1], []))

    def test_project_cut(self):
        sg = bfs_linear_supergraph(grid_2x3(), source=0)
        projected = sg.project_cut([1])
        assert projected == {(1, 2), (1, 4), (3, 4)}

    def test_assignment_from_cut(self):
        sg = bfs_linear_supergraph(grid_2x3(), source=0)
        assignment = sg.assignment_from_cut([1])
        assert assignment[0] == assignment[1] == assignment[3] == 0
        assert assignment[2] == assignment[4] == assignment[5] == 1

    def test_group_of(self):
        sg = bfs_linear_supergraph(grid_2x3(), source=0)
        owner = sg.group_of()
        assert owner[0] == 0
        assert owner[5] == 3


class TestOrderSupergraph:
    def test_exact_when_local(self):
        graph = TaskGraph([1, 1, 1, 1], [(0, 1), (1, 2), (2, 3)], [5, 6, 7])
        sg = order_linear_supergraph(graph, [0, 1, 2, 3], [2, 2])
        assert sg.exact
        assert sg.chain.alpha == [2, 2]
        assert sg.chain.beta == [6]

    def test_spanning_edge_marks_inexact(self):
        graph = TaskGraph([1, 1, 1], [(0, 2)], [9])
        sg = order_linear_supergraph(graph, [0, 1, 2], [1, 1, 1])
        assert not sg.exact
        # The spanning edge is charged to both boundaries.
        assert sg.chain.beta == [9, 9]

    def test_rejects_bad_order(self):
        graph = TaskGraph([1, 1], [(0, 1)])
        with pytest.raises(ValueError, match="permutation"):
            order_linear_supergraph(graph, [0, 0], [2])

    def test_rejects_bad_sizes(self):
        graph = TaskGraph([1, 1], [(0, 1)])
        with pytest.raises(ValueError, match="sum to n"):
            order_linear_supergraph(graph, [0, 1], [1])


class TestRingToChain:
    def ring(self):
        return TaskGraph(
            [1, 2, 3, 4],
            [(0, 1), (1, 2), (2, 3), (0, 3)],
            [10, 5, 20, 30],
        )

    def test_breaks_lightest_edge(self):
        sg, broken = ring_to_chain(self.ring())
        assert broken == (1, 2)
        assert sg.exact

    def test_chain_follows_ring(self):
        sg, _broken = ring_to_chain(self.ring())
        # Walk starts at vertex 1 away from 2: 1, 0, 3, 2.
        assert sg.chain.alpha == [2, 1, 4, 3]
        assert sg.chain.beta == [10, 30, 20]

    def test_rejects_non_cycle(self):
        path = TaskGraph([1, 1, 1], [(0, 1), (1, 2)])
        with pytest.raises(ValueError, match="cycle"):
            ring_to_chain(path)
