"""Property-based tests for the conservative parallel simulator.

The central theorem of the windowed-conservative design: the simulation
outcome is invariant under the gate→LP partition.  Hypothesis drives
random circuits, random stimuli and random partitions and asserts exact
equality of values, evaluation counts and per-wire deliveries against
the 1-LP reference run.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.desim.netlists import random_glue_circuit, ring_counter
from repro.desim.parallel import ParallelLogicSimulator


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=10, max_value=50),
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=0, max_value=10_000),
)
def test_partition_invariance_random_circuits(num_gates, k, seed):
    rng = random.Random(seed)
    circuit = random_glue_circuit(num_gates, rng)
    stim = [
        (float(t), g, rng.random() < 0.5)
        for t in range(0, 200, 25)
        for g in circuit.primary_inputs()
    ]
    reference = ParallelLogicSimulator(
        circuit, [0] * circuit.num_gates
    ).run(300.0, stimuli=stim)
    assignment = [rng.randrange(k) for _ in range(circuit.num_gates)]
    run = ParallelLogicSimulator(circuit, assignment).run(300.0, stimuli=stim)
    assert run.final_values == reference.final_values
    assert run.evaluations == reference.evaluations
    assert run.deliveries == reference.deliveries
    assert run.total_messages == reference.total_messages


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=4, max_value=24),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=0, max_value=10_000),
)
def test_work_and_messages_conserved(stages, k, seed):
    circuit = ring_counter(stages)
    rng = random.Random(seed)
    assignment = [rng.randrange(k) for _ in range(circuit.num_gates)]
    run = ParallelLogicSimulator(circuit, assignment).run(400.0)
    # Work conservation.
    total = sum(run.evaluations[g.ident] * g.cost for g in circuit.gates)
    assert abs(run.sequential_work - total) < 1e-9
    # Message split is consistent with the assignment.
    cross = sum(
        count
        for (src, dst), count in run.deliveries.items()
        if assignment[src] != assignment[dst]
    )
    assert run.cross_messages == cross
    assert run.local_messages == run.total_messages - cross
    # Critical path bounds.
    assert run.critical_path_work <= run.sequential_work + 1e-9
    lower = run.sequential_work / max(run.num_lps, 1)
    assert run.critical_path_work >= lower - 1e-9
