"""Property-based tests for circular task-graph partitioning."""

from itertools import combinations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bandwidth import bandwidth_min
from repro.core.ring import ring_bandwidth_min
from repro.graphs.ring import Ring

weight = st.integers(min_value=1, max_value=9).map(float)


@st.composite
def ring_and_bound(draw, max_tasks: int = 10):
    n = draw(st.integers(min_value=3, max_value=max_tasks))
    alpha = draw(st.lists(weight, min_size=n, max_size=n))
    beta = draw(st.lists(weight, min_size=n, max_size=n))
    slack = draw(st.integers(min_value=0, max_value=30))
    return Ring(alpha, beta), max(alpha) + float(slack)


def brute_force(ring: Ring, bound: float) -> float:
    best = None
    n = ring.num_edges
    for r in range(n + 1):
        for subset in combinations(range(n), r):
            if ring.is_feasible_cut(subset, bound):
                w = ring.cut_weight(subset)
                if best is None or w < best:
                    best = w
    return best


@settings(max_examples=100, deadline=None)
@given(ring_and_bound())
def test_ring_optimum_matches_brute_force(data):
    ring, bound = data
    result = ring_bandwidth_min(ring, bound)
    assert result.is_feasible(bound)
    assert abs(result.weight - brute_force(ring, bound)) < 1e-9
    assert abs(result.weight - ring.cut_weight(result.cut_indices)) < 1e-9


@settings(max_examples=100, deadline=None)
@given(ring_and_bound())
def test_ring_cut_structure(data):
    ring, bound = data
    result = ring_bandwidth_min(ring, bound)
    if ring.total_weight() <= bound:
        assert result.cut_indices == []
    else:
        # A cycle heavier than the bound needs at least two cuts.
        assert len(result.cut_indices) >= 2
        assert result.cut_indices == sorted(set(result.cut_indices))


@settings(max_examples=60, deadline=None)
@given(ring_and_bound())
def test_ring_never_beats_its_openings(data):
    """The ring optimum equals the best over all single-edge openings
    (the exhaustive form of the candidate-arc argument)."""
    ring, bound = data
    if ring.total_weight() <= bound:
        return
    result = ring_bandwidth_min(ring, bound)
    best_opening = min(
        ring.edge_weight(e) + bandwidth_min(ring.open_at(e), bound).weight
        for e in range(ring.num_edges)
    )
    assert abs(result.weight - best_opening) < 1e-9


@settings(max_examples=60, deadline=None)
@given(ring_and_bound())
def test_arc_weights_consistent(data):
    ring, _bound = data
    n = ring.num_tasks
    # Arcs from every cut reconstruct the full ring weight.
    for cut in ([0], [0, n // 2], list(range(n))):
        assert abs(
            sum(ring.component_weights(cut)) - ring.total_weight()
        ) < 1e-9
