"""Property-based tests for the machine executor and the logic simulator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.desim.distributed import simulate_partitioned
from repro.desim.netlists import ring_counter
from repro.desim.simulator import LogicSimulator
from repro.graphs.chain import Chain
from repro.machine.executor import simulate_pipeline
from repro.machine.interconnect import Crossbar, SharedBus
from repro.machine.machine import SharedMemoryMachine

weight = st.integers(min_value=1, max_value=9).map(float)


@st.composite
def chain_and_cut(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    alpha = draw(st.lists(weight, min_size=n, max_size=n))
    beta = draw(st.lists(weight, min_size=n - 1, max_size=n - 1))
    chain = Chain(alpha, beta)
    cut = sorted(
        draw(
            st.sets(
                st.integers(min_value=0, max_value=max(n - 2, 0)),
                max_size=min(n - 1, 6),
            )
        )
    ) if n > 1 else []
    return chain, list(cut)


@settings(max_examples=80, deadline=None)
@given(chain_and_cut(), st.integers(min_value=1, max_value=20))
def test_makespan_lower_bounds(data, num_items):
    chain, cut = data
    machine = SharedMemoryMachine(16, interconnect=SharedBus(bandwidth=5.0))
    ex = simulate_pipeline(chain, cut, machine, num_items)
    # The bottleneck stage must process every item sequentially.
    slowest = max(ex.stage_compute_times)
    assert ex.makespan >= num_items * slowest - 1e-6
    # The whole chain must pass through at least once.
    assert ex.first_item_latency >= sum(ex.stage_compute_times) - 1e-6
    assert ex.makespan >= ex.first_item_latency - 1e-9


@settings(max_examples=60, deadline=None)
@given(chain_and_cut(), st.integers(min_value=2, max_value=10))
def test_busy_time_consistent(data, num_items):
    chain, cut = data
    machine = SharedMemoryMachine(16, interconnect=Crossbar(bandwidth=10.0))
    ex = simulate_pipeline(chain, cut, machine, num_items)
    for stage, busy in enumerate(ex.stage_busy_time):
        expected = num_items * ex.stage_compute_times[stage]
        assert abs(busy - expected) < 1e-6
        assert busy <= ex.makespan + 1e-6


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=2, max_value=10),
    st.integers(min_value=1, max_value=4),
)
def test_message_conservation_any_partition(stages, processors):
    circuit = ring_counter(stages)
    assignment = [g % processors for g in range(circuit.num_gates)]
    run = simulate_partitioned(circuit, assignment, 300.0)
    reference = LogicSimulator(circuit, clock_period=10.0).run(300.0)
    assert run.local_messages + run.cross_messages == reference.total_messages
    # Evaluation work is conserved too.
    total_load = sum(run.processor_loads)
    expected = sum(
        reference.evaluations[g.ident] * g.cost for g in circuit.gates
    )
    assert abs(total_load - expected) < 1e-9


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=2, max_value=12))
def test_simulation_deterministic(stages):
    circuit = ring_counter(stages)
    a = LogicSimulator(circuit, clock_period=10.0).run(200.0)
    b = LogicSimulator(circuit, clock_period=10.0).run(200.0)
    assert a.final_values == b.final_values
    assert a.evaluations == b.evaluations
