"""Property-based tests for the hybrid histogram and SLO windows.

The batch engine merges per-worker histogram payloads back into one
registry, and workers finish in nondeterministic order — so the merged
summary is only trustworthy if it is a pure function of the observed
*multiset*.  On arbitrary shardings (including shards big enough to
spill into log buckets): merge order never changes a bit of the
summary, and merging shards is indistinguishable from one process
observing everything itself.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability.metrics import EXACT_LIMIT, Histogram, MetricsRegistry
from repro.observability.slo import SlidingWindow

# Magnitudes spanning many octaves, plus exact zeros and negatives —
# every bucketing regime (pos/neg/zero) participates.
observation = st.one_of(
    st.floats(min_value=1e-6, max_value=1e6, allow_nan=False,
              allow_infinity=False),
    st.just(0.0),
    st.floats(min_value=-1e3, max_value=-1e-3, allow_nan=False,
              allow_infinity=False),
)


def _multiset(payload):
    """Order-free view of a histogram payload.

    Exact payloads are insertion-ordered verbatim lists — the *multiset*
    is the deterministic part, not the order.  Bucketed payloads are
    dicts and already canonical.
    """
    return sorted(payload) if isinstance(payload, list) else payload


@st.composite
def shard(draw):
    """One worker's observations; sometimes big enough to spill."""
    values = draw(st.lists(observation, min_size=1, max_size=30))
    if draw(st.booleans()):
        # Replicate past EXACT_LIMIT so this shard ships a bucketed
        # payload, without asking hypothesis for 500+ distinct floats.
        values = values * (EXACT_LIMIT // len(values) + 2)
    return values


class TestMergeDeterminism:
    @settings(max_examples=50, deadline=None)
    @given(shards=st.lists(shard(), min_size=2, max_size=4),
           seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_merge_order_invariance_bit_identical(self, shards, seed):
        payloads = []
        for values in shards:
            h = Histogram("m")
            for value in values:
                h.observe(value)
            payloads.append(h.to_payload())

        in_order = Histogram("m")
        for payload in payloads:
            in_order.merge(payload)

        shuffled = Histogram("m")
        permuted = list(payloads)
        random.Random(seed).shuffle(permuted)
        for payload in permuted:
            shuffled.merge(payload)

        # Bit-identical, not approx: fsum is correctly rounded and
        # bucket state is a pure function of the observed multiset.
        assert in_order.summary() == shuffled.summary()
        assert _multiset(in_order.to_payload()) == _multiset(
            shuffled.to_payload()
        )

    @settings(max_examples=50, deadline=None)
    @given(shards=st.lists(shard(), min_size=2, max_size=4))
    def test_merged_shards_match_single_process(self, shards):
        merged = Histogram("m")
        for values in shards:
            worker = Histogram("m")
            for value in values:
                worker.observe(value)
            merged.merge(worker.to_payload())

        single = Histogram("m")
        for values in shards:
            for value in values:
                single.observe(value)

        assert merged.exact == single.exact
        assert merged.summary() == single.summary()
        assert _multiset(merged.to_payload()) == _multiset(
            single.to_payload()
        )

    @settings(max_examples=30, deadline=None)
    @given(shards=st.lists(shard(), min_size=2, max_size=3),
           seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_registry_records_bit_identical_across_merge_orders(
        self, shards, seed
    ):
        # The cross-process path the engine actually uses: worker
        # registries serialize to payloads, the parent merges them,
        # records() feeds the trace file.
        def build(order):
            registry = MetricsRegistry()
            for values in order:
                worker = MetricsRegistry()
                for value in values:
                    worker.histogram("batch.query_latency_s").observe(value)
                worker.counter("queries").inc(len(values))
                registry.merge(worker.to_payload())
            return registry.records()

        permuted = list(shards)
        random.Random(seed).shuffle(permuted)
        assert build(shards) == build(permuted)


class TestSlidingWindowProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        points=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
            ),
            max_size=30,
        ),
        window_s=st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
        now=st.floats(min_value=0.0, max_value=150.0, allow_nan=False),
    )
    def test_window_is_half_open_interval(self, points, window_s, now):
        # Feed in time order (the hub stamps monotonic timestamps).
        points.sort(key=lambda p: p[0])
        window = SlidingWindow(window_s)
        for t, value in points:
            window.add(t, value)
        expected = [v for t, v in points if now - window_s < t <= now]
        # Values newer than ``now`` survive too: eviction only looks at
        # the old edge (the tracker never evaluates in the past).
        newer = [v for t, v in points if t > now]
        assert window.values(now) == expected + newer
