"""Property-based tests for the tree algorithms (2.1 and 2.2)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.brute_force import enumerate_tree_optima
from repro.baselines.kundu_misra import processor_min_bottom_up
from repro.baselines.tree_dp import min_components_exact
from repro.core.bottleneck import bottleneck_min, bottleneck_min_naive
from repro.core.pipeline import partition_tree
from repro.core.processor_min import processor_min
from repro.graphs.tree import Tree

weight = st.integers(min_value=1, max_value=9).map(float)


@st.composite
def tree_and_bound(draw, max_vertices: int = 12):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    weights = draw(st.lists(weight, min_size=n, max_size=n))
    # Random parent attachment encoded as parent[i] < i.
    parents = [
        draw(st.integers(min_value=0, max_value=i - 1)) for i in range(1, n)
    ]
    edge_weights = draw(
        st.lists(weight, min_size=max(n - 1, 0), max_size=max(n - 1, 0))
    )
    tree = Tree(weights, [(p, i + 1) for i, p in enumerate(parents)], edge_weights)
    slack = draw(st.integers(min_value=0, max_value=30))
    return tree, max(weights) + float(slack)


@settings(max_examples=100, deadline=None)
@given(tree_and_bound())
def test_bottleneck_optimal_vs_brute_force(data):
    tree, bound = data
    result = bottleneck_min(tree, bound)
    oracle = enumerate_tree_optima(tree, bound)
    assert oracle.feasible
    assert abs(result.bottleneck - oracle.min_bottleneck) < 1e-9
    assert result.is_feasible(bound)


@settings(max_examples=100, deadline=None)
@given(tree_and_bound())
def test_bottleneck_naive_and_fast_identical(data):
    tree, bound = data
    assert (
        bottleneck_min(tree, bound).cut_edges
        == bottleneck_min_naive(tree, bound).cut_edges
    )


@settings(max_examples=100, deadline=None)
@given(tree_and_bound())
def test_processor_min_optimal(data):
    tree, bound = data
    greedy = processor_min(tree, bound)
    assert greedy.is_feasible(bound)
    assert greedy.num_components == min_components_exact(tree, bound)


@settings(max_examples=100, deadline=None)
@given(tree_and_bound())
def test_two_greedy_formulations_agree(data):
    tree, bound = data
    assert (
        processor_min(tree, bound).num_components
        == processor_min_bottom_up(tree, bound).num_components
    )


@settings(max_examples=100, deadline=None)
@given(tree_and_bound())
def test_processor_count_at_least_packing_bound(data):
    tree, bound = data
    k = processor_min(tree, bound).num_components
    assert k >= math.ceil(tree.total_vertex_weight() / bound - 1e-9)


@settings(max_examples=100, deadline=None)
@given(tree_and_bound())
def test_pipeline_preserves_bottleneck_and_reduces_count(data):
    tree, bound = data
    plan = partition_tree(tree, bound)
    raw = bottleneck_min(tree, bound)
    assert plan.final_cut <= plan.bottleneck_cut
    assert plan.bottleneck <= raw.bottleneck + 1e-12
    assert plan.num_processors <= raw.num_components
    assert all(
        w <= bound + 1e-9 for w in tree.component_weights(plan.final_cut)
    )
