"""Property-based tests for the TEMP_S queue invariants (Appendix A).

Replays Algorithm 4.1's main loop on arbitrary chains, asserting after
every processed edge that the queue upholds its structural invariants:
contiguous coverage, strictly increasing W column, and coverage exactly
matching the open prime subpaths.  Also checks the Appendix-B bound that
the queue never holds more rows than open subpaths.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.prime_subpaths import PrimeStructure
from repro.core.temp_s import SolutionNode, TempSQueue, solution_weight
from repro.graphs.chain import Chain

weight = st.integers(min_value=1, max_value=15).map(float)


@st.composite
def chain_and_bound(draw, max_tasks: int = 40):
    n = draw(st.integers(min_value=2, max_value=max_tasks))
    alpha = draw(st.lists(weight, min_size=n, max_size=n))
    beta = draw(st.lists(weight, min_size=n - 1, max_size=n - 1))
    chain = Chain(alpha, beta)
    slack = draw(st.integers(min_value=0, max_value=30))
    return chain, max(alpha) + float(slack)


def replay_with_checks(chain: Chain, bound: float, search: str) -> None:
    structure = PrimeStructure.compute(chain, bound)
    if structure.p == 0:
        return
    queue = TempSQueue(search=search)
    gamma_sol = None
    for edge in structure.edges:
        completed = queue.pop_completed(edge.first_prime)
        if completed is not None:
            gamma_sol = completed.sol
        prev = gamma_sol if edge.first_prime > 0 else None
        w_value = edge.weight + solution_weight(prev)
        node = SolutionNode(edge.index, edge.weight, prev)
        queue.update(w_value, node, edge.first_prime, edge.last_prime)

        queue.check_invariants()
        # Coverage equals exactly the open prime range.
        lo, hi = queue.covered_range()
        assert lo == edge.first_prime
        assert hi == edge.last_prime
        # Appendix B: row count never exceeds open subpaths (q_i).
        assert len(queue) <= hi - lo + 1
    # Final solution present at the BOTTOM row and feasible.
    final = queue.bottom.sol
    assert final is not None
    cut = final.edge_indices()
    assert chain.is_feasible_cut(cut, bound)
    assert abs(queue.bottom.w - chain.cut_weight(cut)) < 1e-9


@settings(max_examples=120, deadline=None)
@given(chain_and_bound())
def test_invariants_binary_search(data):
    replay_with_checks(*data, search="binary")


@settings(max_examples=120, deadline=None)
@given(chain_and_bound())
def test_invariants_linear_search(data):
    replay_with_checks(*data, search="linear")


@settings(max_examples=80, deadline=None)
@given(chain_and_bound())
def test_w_column_equals_suffix_minima(data):
    """Each row's W equals the minimum W-value among processed edges
    belonging to every subpath in the row's range — the semantic
    invariant behind the binary search."""
    chain, bound = data
    structure = PrimeStructure.compute(chain, bound)
    if structure.p == 0:
        return
    queue = TempSQueue()
    gamma_sol = None
    w_values = {}  # edge index -> W value
    for edge in structure.edges:
        completed = queue.pop_completed(edge.first_prime)
        if completed is not None:
            gamma_sol = completed.sol
        prev = gamma_sol if edge.first_prime > 0 else None
        w_value = edge.weight + solution_weight(prev)
        w_values[edge.index] = w_value
        node = SolutionNode(edge.index, edge.weight, prev)
        queue.update(w_value, node, edge.first_prime, edge.last_prime)

        processed = [e for e in structure.edges if e.index <= edge.index]
        for row in queue.rows():
            for prime_idx in range(row.lo, row.hi + 1):
                members = [
                    w_values[e.index]
                    for e in processed
                    if e.first_prime <= prime_idx <= e.last_prime
                ]
                assert members, "open subpath with no processed edge"
                assert abs(min(members) - row.w) < 1e-9
