"""Property-based tests for the engine fast paths.

The NumPy kernels, the prime-structure cache, and the batch runner are
optimizations — not alternative algorithms — so their contract is exact
equality with the pure-Python reference: identical prime structures,
identical cuts, identical weights (the same floats, not merely close),
and identical ordering of batch results.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

np = pytest.importorskip("numpy")

from repro.core.bandwidth import bandwidth_min
from repro.core.prime_subpaths import PrimeStructure, compute_prime_structure
from repro.engine import PartitionEngine, PartitionQuery
from repro.engine.cache import PrimeStructureCache
from repro.graphs.chain import Chain

# Weights are drawn from small integer grids scaled by 0.5 so both exact
# ties and fractional values occur; uniform lists cover the all-equal
# degenerate case and n=1 covers the single-task one.
weight = st.integers(min_value=1, max_value=20).map(lambda v: v * 0.5)
edge_weight = st.integers(min_value=0, max_value=20).map(lambda v: v * 0.5)


@st.composite
def chain_and_bound(draw, max_tasks: int = 24):
    n = draw(st.integers(min_value=1, max_value=max_tasks))
    if draw(st.booleans()):
        alpha = draw(st.lists(weight, min_size=n, max_size=n))
        beta = draw(st.lists(edge_weight, min_size=n - 1, max_size=n - 1))
    else:  # all-equal weights
        alpha = [draw(weight)] * n
        beta = [draw(edge_weight)] * (n - 1)
    chain = Chain(alpha, beta)
    slack = draw(st.integers(min_value=0, max_value=40)) * 0.5
    return chain, chain.max_vertex_weight() + slack


@settings(max_examples=200, deadline=None)
@given(chain_and_bound())
def test_numpy_structure_identical_to_python(data):
    chain, bound = data
    ref = PrimeStructure.compute(chain, bound)
    fast = compute_prime_structure(chain, bound, backend="numpy")
    assert ref.primes == fast.primes
    assert ref.edges == fast.edges


@settings(max_examples=100, deadline=None)
@given(chain_and_bound())
def test_numpy_structure_identical_without_reduction(data):
    chain, bound = data
    ref = PrimeStructure.compute(chain, bound, apply_reduction=False)
    fast = compute_prime_structure(
        chain, bound, apply_reduction=False, backend="numpy"
    )
    assert ref.primes == fast.primes
    assert ref.edges == fast.edges


@settings(max_examples=200, deadline=None)
@given(chain_and_bound())
def test_numpy_backend_identical_result(data):
    chain, bound = data
    ref = bandwidth_min(chain, bound)
    fast = bandwidth_min(chain, bound, backend="numpy")
    assert fast.cut_indices == ref.cut_indices
    assert fast.weight == ref.weight  # exact, not approximate


@settings(max_examples=100, deadline=None)
@given(
    chain_and_bound(),
    st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=8),
)
def test_cache_identical_to_fresh_python(data, slacks):
    chain, base_bound = data
    cache = PrimeStructureCache()
    # Sorted ascending bounds plus repeats exercise exact hits, interval
    # hits and misses in one run; each answer must match a fresh solve.
    bounds = sorted(base_bound + s * 0.5 for s in slacks) + [base_bound]
    for bound in bounds:
        got = cache.solve(chain, bound)
        ref = bandwidth_min(chain, bound)
        assert got.cut_indices == ref.cut_indices
        assert got.weight == ref.weight


@settings(max_examples=100, deadline=None)
@given(
    chain_and_bound(),
    st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=10),
    st.randoms(use_true_random=False),
)
def test_plan_solve_bounds_identical_to_per_call(data, slacks, shuffler):
    from repro.engine.plan import compile_chain

    chain, base_bound = data
    # Unsorted bounds with duplicates, always including the tightest
    # feasible bound K = max(alpha) — the boundary the stability-interval
    # grouping must get exactly right.
    ks = [base_bound + s * 0.5 for s in slacks]
    ks += [chain.max_vertex_weight(), ks[0]]
    shuffler.shuffle(ks)
    weights, cuts = compile_chain(chain).solve_bounds(ks, return_cuts=True)
    for k, weight, cut in zip(ks, weights, cuts):
        ref = bandwidth_min(chain, k)
        assert weight == ref.weight  # exact, not approximate
        assert cut == list(ref.cut_indices)


@settings(max_examples=100, deadline=None)
@given(
    chain_and_bound(max_tasks=16),
    st.lists(
        st.integers(min_value=0, max_value=4), min_size=1, max_size=4
    ),
)
def test_plan_beta_sweep_identical_to_per_call(data, scales):
    from repro.engine.plan import compile_chain

    chain, bound = data
    betas = [[s * 0.5 * b for b in chain.beta] for s in scales]
    if chain.num_edges == 0:
        betas = [[] for _ in scales]
    out = compile_chain(chain).solve_beta_sweep(betas, bound)
    for row, weight in zip(betas, out):
        assert weight == bandwidth_min(Chain(chain.alpha, row), bound).weight


@settings(max_examples=50, deadline=None)
@given(st.lists(chain_and_bound(max_tasks=12), min_size=1, max_size=6))
def test_solve_many_preserves_input_order(batches):
    engine = PartitionEngine()
    queries = [
        PartitionQuery.from_chain(chain, bound, tag=str(i))
        for i, (chain, bound) in enumerate(batches)
    ]
    results = engine.solve_many(queries)
    assert [r.index for r in results] == list(range(len(queries)))
    assert [r.tag for r in results] == [q.tag for q in queries]
    for (chain, bound), result in zip(batches, results):
        ref = bandwidth_min(chain, bound)
        assert result.ok
        assert result.cut_indices == ref.cut_indices
        assert result.weight == ref.weight
