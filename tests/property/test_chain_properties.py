"""Property-based tests for the chain partitioning algorithms.

Core invariants, on arbitrary instances:

- Algorithm 4.1, the naive recurrence, the O(n log n) baseline, the
  monotone deque and the quadratic DP all report the same optimum;
- results are always feasible and self-consistent;
- every prime subpath is hit by the returned cut (the hitting-set
  characterization of Section 2.3);
- the optimum is monotone non-increasing in the bound K.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.exact_dp import bandwidth_min_dp
from repro.baselines.nicol import bandwidth_min_nlogn
from repro.baselines.sliding_window import bandwidth_min_deque
from repro.core.bandwidth import bandwidth_min
from repro.core.prime_subpaths import find_prime_subpaths
from repro.core.recurrence import bandwidth_min_naive
from repro.graphs.chain import Chain

# Weights are drawn from small integer grids scaled by 0.5 so both exact
# ties and fractional values occur.
weight = st.integers(min_value=1, max_value=20).map(lambda v: v * 0.5)
edge_weight = st.integers(min_value=0, max_value=20).map(lambda v: v * 0.5)


@st.composite
def chain_and_bound(draw, max_tasks: int = 24):
    n = draw(st.integers(min_value=1, max_value=max_tasks))
    alpha = draw(st.lists(weight, min_size=n, max_size=n))
    beta = draw(st.lists(edge_weight, min_size=n - 1, max_size=n - 1))
    chain = Chain(alpha, beta)
    slack = draw(st.integers(min_value=0, max_value=40)) * 0.5
    return chain, chain.max_vertex_weight() + slack


@settings(max_examples=150, deadline=None)
@given(chain_and_bound())
def test_all_algorithms_agree(data):
    chain, bound = data
    reference = bandwidth_min_dp(chain, bound).weight
    for algo in (
        bandwidth_min,
        bandwidth_min_naive,
        bandwidth_min_nlogn,
        bandwidth_min_deque,
    ):
        assert abs(algo(chain, bound).weight - reference) < 1e-9


@settings(max_examples=150, deadline=None)
@given(chain_and_bound())
def test_result_is_feasible_and_consistent(data):
    chain, bound = data
    result = bandwidth_min(chain, bound)
    assert result.is_feasible(bound)
    assert abs(result.weight - chain.cut_weight(result.cut_indices)) < 1e-9
    assert result.cut_indices == sorted(set(result.cut_indices))
    assert all(0 <= i < chain.num_edges for i in result.cut_indices)


@settings(max_examples=150, deadline=None)
@given(chain_and_bound())
def test_cut_hits_every_prime_subpath(data):
    chain, bound = data
    result = bandwidth_min(chain, bound)
    cut = set(result.cut_indices)
    for prime in find_prime_subpaths(chain, bound):
        assert any(prime.first_edge <= e <= prime.last_edge for e in cut)


@settings(max_examples=80, deadline=None)
@given(chain_and_bound(), st.integers(min_value=1, max_value=10))
def test_optimum_monotone_in_bound(data, extra):
    chain, bound = data
    loose = bandwidth_min(chain, bound + extra * 0.5).weight
    tight = bandwidth_min(chain, bound).weight
    assert loose <= tight + 1e-9


@settings(max_examples=80, deadline=None)
@given(chain_and_bound())
def test_search_variants_equal(data):
    chain, bound = data
    weights = {
        round(bandwidth_min(chain, bound, search=s, apply_reduction=r).weight, 9)
        for s in ("binary", "linear")
        for r in (True, False)
    }
    assert len(weights) == 1


@settings(max_examples=80, deadline=None)
@given(chain_and_bound())
def test_empty_cut_iff_total_fits(data):
    chain, bound = data
    result = bandwidth_min(chain, bound)
    has_positive_edges = all(b > 0 for b in chain.beta)
    if chain.total_weight() <= bound:
        assert result.cut_indices == []
    elif has_positive_edges:
        assert result.cut_indices != []
