"""Property-based tests for the Time Warp engine.

The optimistic engine must commit *exactly* the sequential simulation
for any circuit, any partition and any batch quantum — rollback repairs
whatever optimism broke.  Hypothesis drives all three dimensions.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.desim.netlists import random_glue_circuit, ring_counter
from repro.desim.parallel import ParallelLogicSimulator
from repro.desim.timewarp import TimeWarpSimulator


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=12, max_value=40),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=0, max_value=10_000),
)
def test_commit_equivalence_random(num_gates, k, batch, seed):
    rng = random.Random(seed)
    circuit = random_glue_circuit(num_gates, rng)
    stim = [
        (float(t), g, rng.random() < 0.5)
        for t in range(0, 150, 25)
        for g in circuit.primary_inputs()
    ]
    reference = ParallelLogicSimulator(
        circuit, [0] * circuit.num_gates
    ).run(250.0, stimuli=stim)
    assignment = [rng.randrange(k) for _ in range(circuit.num_gates)]
    tw = TimeWarpSimulator(circuit, assignment, batch=batch).run(
        250.0, stimuli=stim
    )
    assert tw.final_values == reference.final_values
    assert tw.evaluations == reference.evaluations
    assert tw.deliveries == reference.deliveries


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=4, max_value=20),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=10),
)
def test_cost_counters_consistent(stages, k, batch):
    circuit = ring_counter(stages)
    assignment = [g % k for g in range(circuit.num_gates)]
    tw = TimeWarpSimulator(circuit, assignment, batch=batch).run(400.0)
    assert tw.committed_events == tw.events_executed - tw.events_rolled_back
    assert tw.committed_events >= 0
    assert 0.0 <= tw.wasted_fraction <= 1.0
    if k == 1:
        assert tw.rollbacks == 0
        assert tw.cross_messages == 0
    # Committed message split matches the assignment.
    cross = sum(
        count
        for (src, dst), count in tw.deliveries.items()
        if assignment[src] != assignment[dst]
    )
    assert tw.cross_messages == cross
