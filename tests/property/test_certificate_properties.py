"""Property-based tests for the verification layer.

On arbitrary instances: every solver output passes its own certificate,
and deliberately corrupted solutions are rejected.  This closes the loop
on :mod:`repro.verify` — the checkers are only trustworthy if they
accept all honest answers *and* refuse all doctored ones.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bandwidth import bandwidth_min
from repro.core.bottleneck import bottleneck_min
from repro.core.processor_min import processor_min
from repro.graphs.chain import Chain
from repro.graphs.tree import Tree
from repro.verify import (
    check_chain_partition,
    check_prime_cover,
    check_tree_cut,
)
from repro.verify.runtime import verify_chain_result, verify_cache_solve

weight = st.integers(min_value=1, max_value=20).map(lambda v: v * 0.5)
edge_weight = st.integers(min_value=0, max_value=20).map(lambda v: v * 0.5)


@st.composite
def chain_and_bound(draw, max_tasks: int = 24):
    n = draw(st.integers(min_value=1, max_value=max_tasks))
    alpha = draw(st.lists(weight, min_size=n, max_size=n))
    beta = draw(st.lists(edge_weight, min_size=n - 1, max_size=n - 1))
    chain = Chain(alpha, beta)
    slack = draw(st.integers(min_value=0, max_value=40)) * 0.5
    return chain, chain.max_vertex_weight() + slack


@st.composite
def tree_and_bound(draw, max_vertices: int = 20):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    weights = draw(st.lists(weight, min_size=n, max_size=n))
    edges = []
    edge_weights = []
    for v in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=v - 1))
        edges.append((parent, v))
        edge_weights.append(draw(edge_weight))
    tree = Tree(weights, edges, edge_weights)
    slack = draw(st.integers(min_value=0, max_value=40)) * 0.5
    return tree, tree.max_vertex_weight() + slack


@settings(max_examples=120, deadline=None)
@given(chain_and_bound())
def test_bandwidth_min_passes_full_certificate(data):
    chain, bound = data
    result = bandwidth_min(chain, bound)
    report = verify_chain_result(
        chain,
        result.cut_indices,
        bound,
        claimed_weight=result.weight,
        optimal_bandwidth=True,
    )
    assert report.ok


@settings(max_examples=60, deadline=None)
@given(chain_and_bound())
def test_numpy_backend_passes_cache_certificate(data):
    pytest.importorskip("numpy")
    chain, bound = data
    result = bandwidth_min(chain, bound, backend="numpy")
    # Includes the pure-Python cross-check: both backends must agree
    # element for element.
    verify_cache_solve(chain, bound, result)


@settings(max_examples=120, deadline=None)
@given(chain_and_bound())
def test_corrupted_chain_claims_rejected(data):
    chain, bound = data
    result = bandwidth_min(chain, bound)

    # Inflated objective claims never verify.
    report = check_chain_partition(
        chain, result.cut_indices, bound, result.weight + 1.0
    )
    assert any(v.code == "chain.bandwidth_mismatch" for v in report.violations)

    # Dropping a cut edge merges two blocks.  The checker's verdict must
    # match ground-truth feasibility exactly: a zero-weight cut edge can
    # be redundant (free to include), so the merged cut is not always
    # infeasible — but whenever it is, both certificates must say so.
    if result.cut_indices:
        broken = result.cut_indices[:-1]
        partition = check_chain_partition(chain, broken, bound)
        cover = check_prime_cover(chain, broken, bound)
        feasible = chain.is_feasible_cut(broken, bound)
        assert partition.ok == feasible
        assert cover.ok == feasible


@settings(max_examples=120, deadline=None)
@given(tree_and_bound())
def test_tree_solvers_pass_certificates(data):
    tree, bound = data
    bott = bottleneck_min(tree, bound)
    assert check_tree_cut(
        tree, bott.cut_edges, bound, claimed_bottleneck=bott.bottleneck
    ).ok
    proc = processor_min(tree, bound)
    assert check_tree_cut(tree, proc.cut_edges, bound).ok


@settings(max_examples=120, deadline=None)
@given(tree_and_bound())
def test_corrupted_tree_claims_rejected(data):
    tree, bound = data
    result = bottleneck_min(tree, bound)
    report = check_tree_cut(
        tree,
        result.cut_edges,
        bound,
        claimed_bottleneck=result.bottleneck + 1.0,
    )
    assert any(v.code == "tree.bottleneck_mismatch" for v in report.violations)

    # Removing a cut edge merges two components; if the merged result
    # still fits under the bound the solver's cut was not minimal-ish,
    # but the certificate only promises load-bound detection, so only
    # assert when the merge genuinely overloads.
    if result.cut_edges:
        broken = sorted(result.cut_edges)[:-1]
        merged = check_tree_cut(tree, broken, bound)
        overweight = any(
            w > bound for w in tree.component_weights(set(broken))
        )
        assert merged.ok != overweight


@settings(max_examples=80, deadline=None)
@given(chain_and_bound())
def test_prime_cover_matches_feasibility(data):
    """A cut covers all primes iff it satisfies the load bound — the
    paper's Section 2.3 characterization, checked on arbitrary cuts."""
    chain, bound = data
    result = bandwidth_min(chain, bound)
    for candidate in ([], result.cut_indices, list(range(chain.num_edges))):
        covered = check_prime_cover(chain, candidate, bound).ok
        feasible = chain.is_feasible_cut(candidate, bound)
        assert covered == feasible
