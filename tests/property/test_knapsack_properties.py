"""Property-based tests for the Theorem-1 machinery."""

from itertools import combinations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.star_knapsack import (
    cut_to_knapsack_items,
    knapsack_01,
    knapsack_items_to_cut,
    knapsack_to_star,
    star_bandwidth_min,
)

items = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=8),  # weight
        st.integers(min_value=0, max_value=9),  # profit
    ),
    min_size=0,
    max_size=9,
)


@settings(max_examples=150, deadline=None)
@given(items, st.integers(min_value=0, max_value=20))
def test_knapsack_optimal(item_list, capacity):
    weights = [w for w, _p in item_list]
    profits = [p for _w, p in item_list]
    solution = knapsack_01(weights, profits, capacity)
    # Solution is valid.
    assert sum(weights[i] for i in solution.items) <= capacity
    assert solution.profit == sum(profits[i] for i in solution.items)
    # Solution is optimal (exhaustive check).
    best = 0.0
    for size in range(len(item_list) + 1):
        for combo in combinations(range(len(item_list)), size):
            if sum(weights[i] for i in combo) <= capacity:
                best = max(best, float(sum(profits[i] for i in combo)))
    assert solution.profit == best


@settings(max_examples=100, deadline=None)
@given(items.filter(lambda lst: len(lst) >= 1))
def test_reduction_round_trip(item_list):
    weights = [max(w, 1) for w, _p in item_list]
    profits = [p for _w, p in item_list]
    star = knapsack_to_star(weights, profits)
    for size in range(len(item_list) + 1):
        chosen = set(range(size))
        cut = knapsack_items_to_cut(star, chosen)
        assert cut_to_knapsack_items(star, cut) == chosen


@settings(max_examples=100, deadline=None)
@given(
    items.filter(lambda lst: len(lst) >= 1),
    st.integers(min_value=0, max_value=15),
)
def test_star_solver_equals_knapsack_complement(item_list, extra_capacity):
    """Theorem 1: minimum cut weight = total profit - maximum kept
    profit, under capacity = K - centre weight."""
    weights = [max(w, 1) for w, _p in item_list]
    profits = [p for _w, p in item_list]
    capacity = max(weights) + extra_capacity  # K >= max leaf weight
    star = knapsack_to_star(weights, profits)
    _cut, cut_weight = star_bandwidth_min(star, float(capacity))
    kept = knapsack_01(weights, profits, capacity)
    assert abs(cut_weight - (sum(profits) - kept.profit)) < 1e-9
