"""Every example script must run cleanly end to end.

Examples are user-facing documentation; this test keeps them green as
the library evolves (sizes are whatever the scripts ship with — they
are designed to finish in seconds).
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", SCRIPTS, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script.name} printed nothing"


def test_examples_exist():
    assert len(SCRIPTS) >= 3, "the repository promises at least 3 examples"
    names = {p.name for p in SCRIPTS}
    assert "quickstart.py" in names
