"""CLI smoke tests (argument wiring, not output values)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in (
            ["fig2"],
            ["fig2w"],
            ["compare"],
            ["linear"],
            ["temps"],
            ["tree"],
            ["realtime"],
            ["circuit"],
            ["run"],
            ["analyze"],
        ):
            args = parser.parse_args(command)
            assert callable(args.func)


class TestExecution:
    def test_tree_command(self, capsys):
        assert main(["tree", "--n", "60", "--k-ratio", "4"]) == 0
        out = capsys.readouterr().out
        assert "processors" in out

    def test_fig2_small(self, capsys):
        assert main(["fig2", "--n", "200", "--ratio", "2", "8", "--reps", "1"]) == 0
        out = capsys.readouterr().out
        assert "p log q" in out
        assert "max p log q" in out

    def test_fig2w_small(self, capsys):
        assert main(["fig2w", "--n", "200", "--wmax", "5", "20", "--reps", "1"]) == 0
        assert "w_max" in capsys.readouterr().out

    def test_temps_small(self, capsys):
        assert main(["temps", "--n", "300", "--ratio", "4", "--reps", "1"]) == 0
        assert "TEMP_S" in capsys.readouterr().out

    def test_linear_small(self, capsys):
        assert main(["linear", "--n", "300", "600", "--reps", "1"]) == 0
        out = capsys.readouterr().out
        assert "linear fit" in out

    def test_compare_small(self, capsys):
        assert main(["compare", "--n", "300", "--reps", "1"]) == 0
        assert "paper" in capsys.readouterr().out

    def test_realtime_command(self, capsys):
        assert main(["realtime", "--n", "40"]) == 0
        assert "deadline" in capsys.readouterr().out

    def test_circuit_command(self, capsys):
        assert main(["circuit", "--n", "24", "--end-time", "500"]) == 0
        assert "processors" in capsys.readouterr().out

    def test_ring_command(self, capsys):
        assert main(["ring", "--n", "120"]) == 0
        out = capsys.readouterr().out
        assert "exact circular partition" in out
        assert "heuristic/exact ratio" in out

    def test_pareto_command(self, capsys):
        assert main(["pareto", "--n", "40", "--max-processors", "4"]) == 0
        assert "Pareto" in capsys.readouterr().out

    def test_sync_command(self, capsys):
        assert main(["sync", "--n", "24", "--end-time", "500"]) == 0
        out = capsys.readouterr().out
        assert "TW rollbacks" in out
        assert "identical committed results" in out

    def test_fig2plot_command(self, capsys):
        assert main(["fig2plot", "--n", "300", "--ratio", "2", "16",
                     "--reps", "1"]) == 0
        out = capsys.readouterr().out
        assert "p log q" in out
        assert "|" in out  # the canvas rendered


class TestRunCommand:
    def test_run_prints_phase_breakdown(self, capsys):
        assert main(["run", "--n", "200", "--k-ratio", "4"]) == 0
        out = capsys.readouterr().out
        assert "Per-phase breakdown" in out
        assert "temp_s_sweep" in out
        assert "cost model:" in out

    def test_run_with_baseline(self, capsys):
        assert main(["run", "--n", "150", "--baseline"]) == 0
        out = capsys.readouterr().out
        assert "nicol_dp_sweep" in out

    def test_run_writes_trace_file(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        assert main(["run", "--n", "120", "--trace", str(trace)]) == 0
        records = [
            json.loads(line) for line in trace.read_text().splitlines()
        ]
        assert records[0]["kind"] == "meta"
        kinds = {r["kind"] for r in records}
        assert "span" in kinds
        paths = [r.get("path") for r in records if r["kind"] == "span"]
        assert any(p and p.startswith("bandwidth_min") for p in paths)


class TestBatchErrorPaths:
    """Satellite: the ``repro batch`` failure modes users actually hit."""

    def test_malformed_jsonl_line_exits_2_naming_line(self, tmp_path, capsys):
        inp = tmp_path / "queries.jsonl"
        out = tmp_path / "results.jsonl"
        inp.write_text(
            json.dumps({"alpha": [1, 1], "beta": [1], "bound": 2}) + "\n"
            + "{this is not json\n"
        )
        code = main(["batch", "--input", str(inp), "--output", str(out)])
        assert code == 2
        err = capsys.readouterr().err
        assert "line 2" in err
        assert not out.exists()  # nothing half-written on a parse error

    def test_partial_failure_exits_1(self, tmp_path, capsys):
        inp = tmp_path / "queries.jsonl"
        out = tmp_path / "results.jsonl"
        records = [
            {"alpha": [1, 1, 1], "beta": [1, 1], "bound": 2, "tag": "ok"},
            {"alpha": [5.0, 1.0], "beta": [2.0], "bound": 0.5, "tag": "bad"},
        ]
        inp.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        code = main(["batch", "--input", str(inp), "--output", str(out)])
        assert code == 1
        err = capsys.readouterr().err
        assert "1/2 queries failed" in err
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert [("error" in row) for row in rows] == [False, True]

    def test_empty_input_file_exits_0(self, tmp_path, capsys):
        inp = tmp_path / "empty.jsonl"
        out = tmp_path / "results.jsonl"
        inp.write_text("")
        assert main(["batch", "--input", str(inp), "--output", str(out)]) == 0
        assert out.read_text() == ""

    def test_missing_input_file_exits_2(self, tmp_path, capsys):
        code = main(
            ["batch", "--input", str(tmp_path / "nope.jsonl"),
             "--output", "-"]
        )
        assert code == 2
        assert "cannot read" in capsys.readouterr().err


class TestTraceReportCommand:
    def run_batch_with_trace(self, tmp_path, workers="0"):
        inp = tmp_path / "queries.jsonl"
        out = tmp_path / "results.jsonl"
        trace = tmp_path / "trace.jsonl"
        records = [
            {"alpha": [1.0] * 12, "beta": [1.0] * 11, "bound": 3.0,
             "tag": f"q{i}"}
            for i in range(4)
        ]
        inp.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        code = main(
            ["batch", "--input", str(inp), "--output", str(out),
             "--workers", workers, "--trace", str(trace)]
        )
        return code, trace

    def test_batch_trace_then_report(self, tmp_path, capsys):
        code, trace = self.run_batch_with_trace(tmp_path)
        assert code == 0
        assert trace.exists()
        capsys.readouterr()
        assert main(["report", "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "Per-phase breakdown" in out
        assert "engine.batch.queries" in out

    def test_batch_trace_parallel_collects_worker_spans(self, tmp_path):
        code, trace = self.run_batch_with_trace(tmp_path, workers="2")
        assert code == 0
        records = [
            json.loads(line) for line in trace.read_text().splitlines()
        ]
        worker_spans = [
            r for r in records
            if r["kind"] == "span" and "query_index" in r
        ]
        assert sorted({r["query_index"] for r in worker_spans}) == [0, 1, 2, 3]

    def test_report_trace_missing_file_exits_2(self, tmp_path, capsys):
        code = main(["report", "--trace", str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert "report:" in capsys.readouterr().err

    def test_report_trace_malformed_midfile_exits_2(self, tmp_path, capsys):
        trace = tmp_path / "bad.jsonl"
        trace.write_text(
            '{"kind": "meta"}\nnot json\n{"kind": "span", "path": "x"}\n'
        )
        code = main(["report", "--trace", str(trace)])
        assert code == 2
        assert "line 2" in capsys.readouterr().err

    def test_report_trace_torn_tail_tolerated(self, tmp_path, capsys):
        # A malformed *last* record is an interrupted stream, not a bad
        # file: warn, skip it, and report on what did land.
        trace = tmp_path / "torn.jsonl"
        trace.write_text('{"kind": "meta"}\n{"kind": "spa')
        with pytest.warns(UserWarning, match="torn tail"):
            code = main(["report", "--trace", str(trace)])
        assert code == 0


class TestAnalyzeCommand:
    def test_analyze_clean_on_src_tree(self, capsys):
        assert main(["analyze"]) == 0
        assert "analyze: clean" in capsys.readouterr().err

    def test_analyze_reports_findings_and_exits_1(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "engine" / "pooled.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "from concurrent.futures import ProcessPoolExecutor\n"
            "RESULTS = []\n"
            "def work(x):\n"
            "    RESULTS.append(x)\n"
            "def run(items):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(work, items))\n"
        )
        assert main(["analyze", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "REPRO006" in out

    def test_analyze_syntax_error_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        assert main(["analyze", str(tmp_path)]) == 2
        assert "analyze:" in capsys.readouterr().err

    def test_analyze_complexity_renders_gate(self, capsys):
        code = main(
            [
                "analyze",
                "--complexity",
                "--scales",
                "128,256,512",
                "--reps",
                "1",
            ]
        )
        assert code == 0
        assert "complexity gate passed" in capsys.readouterr().out

    def test_analyze_complexity_json_flag_emits_report(self, capsys):
        code = main(
            [
                "analyze",
                "--complexity",
                "--json",
                "--scales",
                "128,256,512",
                "--reps",
                "1",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["passed"] is True
        gate = payload["complexity"]
        assert gate["passed"] is True
        names = {probe["name"] for probe in gate["probes"]}
        assert "core.bandwidth_min" in names
