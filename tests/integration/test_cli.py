"""CLI smoke tests (argument wiring, not output values)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in (
            ["fig2"],
            ["fig2w"],
            ["compare"],
            ["linear"],
            ["temps"],
            ["tree"],
            ["realtime"],
            ["circuit"],
        ):
            args = parser.parse_args(command)
            assert callable(args.func)


class TestExecution:
    def test_tree_command(self, capsys):
        assert main(["tree", "--n", "60", "--k-ratio", "4"]) == 0
        out = capsys.readouterr().out
        assert "processors" in out

    def test_fig2_small(self, capsys):
        assert main(["fig2", "--n", "200", "--ratio", "2", "8", "--reps", "1"]) == 0
        out = capsys.readouterr().out
        assert "p log q" in out
        assert "max p log q" in out

    def test_fig2w_small(self, capsys):
        assert main(["fig2w", "--n", "200", "--wmax", "5", "20", "--reps", "1"]) == 0
        assert "w_max" in capsys.readouterr().out

    def test_temps_small(self, capsys):
        assert main(["temps", "--n", "300", "--ratio", "4", "--reps", "1"]) == 0
        assert "TEMP_S" in capsys.readouterr().out

    def test_linear_small(self, capsys):
        assert main(["linear", "--n", "300", "600", "--reps", "1"]) == 0
        out = capsys.readouterr().out
        assert "linear fit" in out

    def test_compare_small(self, capsys):
        assert main(["compare", "--n", "300", "--reps", "1"]) == 0
        assert "paper" in capsys.readouterr().out

    def test_realtime_command(self, capsys):
        assert main(["realtime", "--n", "40"]) == 0
        assert "deadline" in capsys.readouterr().out

    def test_circuit_command(self, capsys):
        assert main(["circuit", "--n", "24", "--end-time", "500"]) == 0
        assert "processors" in capsys.readouterr().out

    def test_ring_command(self, capsys):
        assert main(["ring", "--n", "120"]) == 0
        out = capsys.readouterr().out
        assert "exact circular partition" in out
        assert "heuristic/exact ratio" in out

    def test_pareto_command(self, capsys):
        assert main(["pareto", "--n", "40", "--max-processors", "4"]) == 0
        assert "Pareto" in capsys.readouterr().out

    def test_sync_command(self, capsys):
        assert main(["sync", "--n", "24", "--end-time", "500"]) == 0
        out = capsys.readouterr().out
        assert "TW rollbacks" in out
        assert "identical committed results" in out

    def test_fig2plot_command(self, capsys):
        assert main(["fig2plot", "--n", "300", "--ratio", "2", "16",
                     "--reps", "1"]) == 0
        out = capsys.readouterr().out
        assert "p log q" in out
        assert "|" in out  # the canvas rendered
