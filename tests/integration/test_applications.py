"""End-to-end integration of the two Section-3 application studies."""

import pytest

from repro.baselines.greedy import equal_blocks_cut
from repro.core import bandwidth_min, partition_chain
from repro.desim.distributed import simulate_partitioned
from repro.desim.linearize import circuit_supergraph
from repro.desim.netlists import adder_pipeline, ring_counter
from repro.desim.simulator import LogicSimulator
from repro.graphs.generators import random_chain
from repro.machine.executor import simulate_pipeline
from repro.machine.interconnect import SharedBus
from repro.machine.machine import SharedMemoryMachine
from repro.realtime.planner import plan_realtime_task
from repro.realtime.schedule import build_schedule, pipeline_period
from repro.realtime.spec import RealTimeTask


class TestRealTimeEndToEnd:
    def make_task(self, seed: int = 3) -> RealTimeTask:
        chain = random_chain(
            80, seed, vertex_range=(1, 10), edge_range=(1, 100)
        )
        return RealTimeTask(
            "workload", chain.alpha, chain.beta,
            deadline=3.5 * max(chain.alpha),
        )

    def test_plan_verify_schedule(self):
        task = self.make_task()
        machine = SharedMemoryMachine(64, interconnect=SharedBus(bandwidth=20.0))
        plan = plan_realtime_task(task, machine)
        assert plan.meets_deadline
        schedules = build_schedule(plan, machine)
        assert pipeline_period(schedules) > 0
        # The machine simulator agrees the deadline holds per stage.
        ex = simulate_pipeline(task.to_chain(), plan.cut_indices, machine, 5)
        assert max(ex.stage_compute_times) <= task.deadline + 1e-9

    def test_bandwidth_plan_reduces_bus_pressure(self):
        task = self.make_task()
        machine = SharedMemoryMachine(64, interconnect=SharedBus(bandwidth=20.0))
        smart = plan_realtime_task(task, machine, "bandwidth")
        naive = partition_chain(
            task.to_chain(), task.deadline, "processors"
        )
        from repro.machine.traffic import network_demand

        naive_traffic = network_demand(task.to_chain(), naive.cut_indices)
        assert smart.traffic.total_demand <= naive_traffic.total_demand

    def test_executed_throughput_ranks_partitions(self):
        """On a slow bus, the bandwidth-minimal partition sustains at
        least the throughput of an equal-blocks partition with the same
        number of stages."""
        task = self.make_task(seed=11)
        chain = task.to_chain()
        machine = SharedMemoryMachine(64, interconnect=SharedBus(bandwidth=3.0))
        smart = bandwidth_min(chain, task.deadline)
        naive = equal_blocks_cut(chain, smart.num_components)
        ex_smart = simulate_pipeline(chain, smart.cut_indices, machine, 40)
        ex_naive = simulate_pipeline(chain, naive.cut_indices, machine, 40)
        assert ex_smart.total_traffic <= ex_naive.total_traffic
        assert ex_smart.throughput >= 0.85 * ex_naive.throughput


class TestSimulationEndToEnd:
    def test_ring_counter_study(self):
        circuit = ring_counter(48)
        profile = LogicSimulator(circuit).run(1500.0)
        supergraph = circuit_supergraph(circuit, activity=profile.activity())
        bound = 6.0 * supergraph.chain.max_vertex_weight()
        cut = bandwidth_min(supergraph.chain, bound)
        assignment = supergraph.assignment_from_cut(cut.cut_indices)
        run = simulate_partitioned(circuit, assignment, 1500.0)
        assert run.num_processors == cut.num_components
        assert run.cross_messages > 0
        assert run.cross_fraction < 0.5  # most traffic stays local

    def test_partitioned_beats_round_robin(self):
        circuit = ring_counter(48)
        profile = LogicSimulator(circuit).run(1500.0)
        supergraph = circuit_supergraph(circuit, activity=profile.activity())
        bound = 6.0 * supergraph.chain.max_vertex_weight()
        cut = bandwidth_min(supergraph.chain, bound)
        smart = supergraph.assignment_from_cut(cut.cut_indices)
        k = cut.num_components
        round_robin = [g % k for g in range(circuit.num_gates)]
        smart_run = simulate_partitioned(circuit, smart, 1500.0)
        rr_run = simulate_partitioned(circuit, round_robin, 1500.0)
        assert smart_run.cross_messages < rr_run.cross_messages

    def test_adder_pipeline_study(self):
        circuit, _stages = adder_pipeline(8, bits=4)
        stim = [
            (float(t), g, (t // 40 + g) % 2 == 0)
            for t in range(0, 600, 40)
            for g in circuit.primary_inputs()
        ]
        profile = LogicSimulator(circuit).run(800.0, stimuli=stim)
        supergraph = circuit_supergraph(circuit, activity=profile.activity())
        assert supergraph.exact
        bound = supergraph.chain.total_weight() / 3
        bound = max(bound, supergraph.chain.max_vertex_weight())
        cut = bandwidth_min(supergraph.chain, bound)
        assignment = supergraph.assignment_from_cut(cut.cut_indices)
        run = simulate_partitioned(circuit, assignment, 800.0, stimuli=stim)
        # Load respects the execution-time bound proportionally: the
        # partition was computed on activity-weighted gates.
        assert run.num_processors == cut.num_components
        assert run.max_load <= sum(run.processor_loads)
