"""Cross-module integration: the paper's algorithms against each other
and against every baseline, on shared medium-size instances."""

import random

import pytest

from repro.baselines import (
    bandwidth_min_deque,
    bandwidth_min_dp,
    bandwidth_min_nlogn,
    ccp_dp,
    ccp_hansen_lih,
    ccp_probe,
    first_fit_cut,
)
from repro.core import (
    bandwidth_min,
    bandwidth_min_naive,
    bottleneck_min,
    partition_chain,
    partition_tree,
    processor_min,
)
from repro.graphs.generators import random_chain, random_tree


class TestBandwidthFamily:
    @pytest.mark.parametrize("ratio", [1.1, 2.0, 5.0, 20.0])
    def test_five_implementations_agree_medium(self, medium_chain, ratio):
        bound = ratio * medium_chain.max_vertex_weight()
        weights = {
            round(algo(medium_chain, bound).weight, 6)
            for algo in (
                bandwidth_min,
                bandwidth_min_naive,
                bandwidth_min_dp,
                bandwidth_min_nlogn,
                bandwidth_min_deque,
            )
        }
        assert len(weights) == 1

    def test_optimal_beats_first_fit(self, medium_chain):
        bound = 3.0 * medium_chain.max_vertex_weight()
        optimal = bandwidth_min(medium_chain, bound).weight
        greedy = first_fit_cut(medium_chain, bound).weight
        assert optimal <= greedy
        # On random instances the gap is essentially always strict.
        assert optimal < greedy

    def test_large_instance_smoke(self):
        chain = random_chain(20_000, 5, vertex_range=(1, 10), edge_range=(1, 100))
        bound = 4.0 * chain.max_vertex_weight()
        a = bandwidth_min(chain, bound)
        b = bandwidth_min_deque(chain, bound)
        assert a.weight == pytest.approx(b.weight)
        assert a.is_feasible(bound)


class TestObjectiveRelations:
    def test_three_objectives_ordering(self, medium_chain):
        bound = 3.0 * medium_chain.max_vertex_weight()
        bandwidth = partition_chain(medium_chain, bound, "bandwidth")
        bottleneck = partition_chain(medium_chain, bound, "bottleneck")
        processors = partition_chain(medium_chain, bound, "processors")
        # All feasible.
        for result in (bandwidth, bottleneck, processors):
            assert result.is_feasible(bound)
        # Bandwidth objective dominates on total cut weight.
        assert bandwidth.weight <= bottleneck.weight + 1e-9
        assert bandwidth.weight <= processors.weight + 1e-9
        # Processor objective dominates on component count.
        assert processors.num_components <= bandwidth.num_components
        assert processors.num_components <= bottleneck.num_components
        # Bottleneck objective dominates on heaviest cut edge.
        def max_edge(result):
            return max(
                (medium_chain.edge_weight(i) for i in result.cut_indices),
                default=0.0,
            )

        assert max_edge(bottleneck) <= max_edge(bandwidth) + 1e-9
        assert max_edge(bottleneck) <= max_edge(processors) + 1e-9

    def test_tree_pipeline_on_medium(self, medium_tree):
        bound = 3.0 * medium_tree.max_vertex_weight()
        plan = partition_tree(medium_tree, bound)
        raw_bottleneck = bottleneck_min(medium_tree, bound)
        raw_processors = processor_min(medium_tree, bound)
        assert plan.bottleneck <= raw_bottleneck.bottleneck + 1e-9
        # The plan respects the optimal bottleneck, so it may need more
        # processors than the unconstrained minimum — never fewer.
        assert plan.num_processors >= raw_processors.num_components


class TestChainsOnChains:
    def test_three_ccp_algorithms_agree(self, medium_chain):
        for m in (1, 2, 7, 20):
            a = ccp_dp(medium_chain, m).bottleneck
            b = ccp_probe(medium_chain, m).bottleneck
            c = ccp_hansen_lih(medium_chain, m).bottleneck
            assert a == pytest.approx(b)
            assert a == pytest.approx(c)

    def test_ccp_vs_load_bounded_duality(self, medium_chain):
        """The two problem styles are dual: partitioning with bound K
        uses k* blocks iff chains-on-chains with k* blocks achieves
        bottleneck <= K."""
        bound = 2.5 * medium_chain.max_vertex_weight()
        k_star = partition_chain(medium_chain, bound, "processors").num_components
        assert ccp_dp(medium_chain, k_star).bottleneck <= bound
        if k_star > 1:
            assert ccp_dp(medium_chain, k_star - 1).bottleneck > bound


class TestScalingConsistency:
    def test_many_random_instances(self):
        rng = random.Random(55)
        for _ in range(10):
            n = rng.randint(100, 800)
            chain = random_chain(n, rng)
            bound = rng.uniform(1.5, 20) * chain.max_vertex_weight()
            fast = bandwidth_min(chain, bound)
            reference = bandwidth_min_deque(chain, bound)
            assert fast.weight == pytest.approx(reference.weight)

    def test_trees_of_every_shape(self):
        rng = random.Random(56)
        for attachment in ("uniform", "preferential", "path"):
            tree = random_tree(300, rng, attachment=attachment)
            bound = 4.0 * tree.max_vertex_weight()
            plan = partition_tree(tree, bound)
            assert all(
                w <= bound + 1e-9
                for w in tree.component_weights(plan.final_cut)
            )
