"""Acceptance tests: traced runs reproduce ``AlgorithmStats`` exactly.

The tracer embeds a real :class:`OpCounter` in each span and traced
``bandwidth_min`` calls feed that counter into the TEMP_S sweep, so the
exported spans must carry the *measured* paper quantities (``p``, ``q``,
``p log q``, search steps, TEMP_S lengths) bit-for-bit — not a
re-derivation — and tracing must never perturb the solution itself.
"""

import pytest

from repro.baselines.nicol import bandwidth_min_nlogn
from repro.core.bandwidth import bandwidth_min, bandwidth_stats
from repro.engine.kernels import HAVE_NUMPY
from repro.graphs.generators import random_chain
from repro.observability import Tracer

BACKENDS = ["python"] + (["numpy"] if HAVE_NUMPY else [])


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


def traced_solve(chain, bound, backend, search="binary"):
    tracer = Tracer()
    result = bandwidth_min(
        chain, bound, backend=backend, search=search, tracer=tracer
    )
    return tracer, result


class TestStatsEquivalence:
    def test_spans_match_algorithm_stats_bit_for_bit(self, backend):
        chain = random_chain(400, rng=42)
        bound = 3.0 * chain.max_vertex_weight()
        tracer, result = traced_solve(chain, bound, backend)
        stats = bandwidth_stats(chain, bound)

        root = tracer.find("bandwidth_min")
        sweep = tracer.find("temp_s_sweep")
        assert root is not None and sweep is not None
        # Structure quantities: exact integers / identical float exprs.
        assert root.attrs["p"] == stats.p
        assert root.attrs["q"] == stats.q
        assert root.attrs["p_log_q"] == stats.p_log_q
        assert root.attrs["r"] == sweep.attrs["r"]
        # Sweep counts are the measured values, not approximations.
        assert sweep.counter.get("search_steps") == stats.search_steps
        assert sweep.counter.trace_mean("temp_s_len") == stats.mean_temp_s_len
        assert sweep.counter.trace_max("temp_s_len") == stats.max_temp_s_len
        # And the root records the solution itself.
        assert root.attrs["weight"] == result.weight
        assert root.attrs["components"] == result.num_components

    def test_exported_records_carry_the_same_numbers(self, backend):
        chain = random_chain(300, rng=7)
        bound = 2.5 * chain.max_vertex_weight()
        tracer, _ = traced_solve(chain, bound, backend)
        stats = bandwidth_stats(chain, bound)
        records = {r["name"]: r for r in tracer.records()}
        sweep = records["temp_s_sweep"]
        assert sweep["counts"]["search_steps"] == stats.search_steps
        assert sweep["traces"]["temp_s_len"]["mean"] == stats.mean_temp_s_len
        assert sweep["traces"]["temp_s_len"]["max"] == stats.max_temp_s_len
        assert records["bandwidth_min"]["attrs"]["p_log_q"] == stats.p_log_q


class TestTracingIsInert:
    def test_traced_result_equals_untraced(self, backend):
        for rng in (1, 2, 3):
            chain = random_chain(200, rng=rng)
            bound = 2.0 * chain.max_vertex_weight()
            plain = bandwidth_min(chain, bound, backend=backend)
            _, traced = traced_solve(chain, bound, backend)
            assert (traced.cut_indices, traced.weight) == (
                plain.cut_indices,
                plain.weight,
            )

    def test_linear_search_traced(self, backend):
        chain = random_chain(150, rng=9)
        bound = 2.0 * chain.max_vertex_weight()
        plain = bandwidth_min(chain, bound, backend=backend, search="linear")
        tracer, traced = traced_solve(chain, bound, backend, search="linear")
        assert traced.weight == plain.weight
        assert tracer.find("temp_s_sweep").counter.get("search_steps") > 0

    def test_null_tracer_takes_fast_path(self, backend):
        from repro.observability import NULL_TRACER

        chain = random_chain(100, rng=11)
        bound = 2.0 * chain.max_vertex_weight()
        plain = bandwidth_min(chain, bound, backend=backend)
        nulled = bandwidth_min(
            chain, bound, backend=backend, tracer=NULL_TRACER
        )
        assert nulled.weight == plain.weight
        assert NULL_TRACER.roots == []


class TestBaselineTracing:
    def test_nicol_traced_matches_and_counts_heap_ops(self):
        chain = random_chain(250, rng=5)
        bound = 2.0 * chain.max_vertex_weight()
        plain = bandwidth_min_nlogn(chain, bound)
        tracer = Tracer()
        traced = bandwidth_min_nlogn(chain, bound, tracer=tracer)
        assert traced.weight == plain.weight
        span = tracer.find("nicol_dp_sweep")
        assert span is not None
        assert span.attrs["weight"] == traced.weight
        assert span.counter.get("heap_pushes") > 0
        assert span.counter.get("heap_pops") > 0


class TestPrimeStructureTracing:
    def test_python_backend_emits_phase_spans(self):
        from repro.core.prime_subpaths import compute_prime_structure

        chain = random_chain(120, rng=3)
        bound = 2.0 * chain.max_vertex_weight()
        tracer = Tracer()
        structure = compute_prime_structure(
            chain, bound, backend="python", tracer=tracer
        )
        find = tracer.find("find_primes")
        reduce_span = tracer.find("reduce_edges")
        assert find.attrs["p"] == structure.p
        assert reduce_span.attrs["r"] == structure.r

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
    def test_numpy_backend_emits_kernel_dispatch_span(self):
        from repro.engine.kernels import compute_prime_structure_numpy

        chain = random_chain(120, rng=4)
        bound = 2.0 * chain.max_vertex_weight()
        tracer = Tracer()
        structure = compute_prime_structure_numpy(chain, bound, tracer=tracer)
        span = tracer.find("kernel_dispatch")
        assert span.attrs["kernel"] == "prime_structure"
        assert span.attrs["p"] == structure.p
        assert span.attrs["r"] == structure.r
