"""Unit tests for :mod:`repro.observability.metrics`."""

import pytest

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestInstruments:
    def test_counter(self):
        c = Counter("hits")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_gauge(self):
        g = Gauge("depth")
        g.set(7)
        g.set(3)
        assert g.value == 3

    def test_histogram_summary(self):
        h = Histogram("lat")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == 10.0
        assert h.mean == 2.5
        assert (h.min, h.max) == (1.0, 4.0)
        summary = h.summary()
        assert summary["p50"] == 2.0
        assert summary["p90"] == 4.0
        assert summary["p99"] == 4.0

    def test_empty_histogram(self):
        h = Histogram("lat")
        assert h.mean == 0.0
        assert h.percentile(50) == 0.0
        assert h.summary()["count"] == 0

    def test_nearest_rank_percentile(self):
        h = Histogram("lat", values=[float(v) for v in range(1, 101)])
        assert h.percentile(50) == 50.0
        assert h.percentile(90) == 90.0
        assert h.percentile(99) == 99.0
        assert h.percentile(100) == 100.0


class TestRegistry:
    def test_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")
        assert len(reg) == 3

    def test_same_name_different_kinds(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.gauge("x").set(2)
        assert reg.counter("x").value == 1
        assert reg.gauge("x").value == 2

    def test_payload_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(3)
        reg.gauge("depth").set(2)
        reg.histogram("lat").observe(0.5)
        clone = MetricsRegistry.from_payload(reg.to_payload())
        assert clone.to_payload() == reg.to_payload()

    def test_merge_semantics(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.counter("hits").inc(2)
        parent.gauge("depth").set(1)
        parent.histogram("lat").observe(1.0)
        worker.counter("hits").inc(3)
        worker.gauge("depth").set(9)
        worker.histogram("lat").observe(2.0)
        parent.merge(worker)
        assert parent.counter("hits").value == 5  # counters add
        assert parent.gauge("depth").value == 9  # gauges last-write
        assert parent.histogram("lat").values == [1.0, 2.0]  # observations concat

    def test_merge_accepts_payload_dict(self):
        parent = MetricsRegistry()
        parent.merge({"counters": {"hits": 4}, "histograms": {"lat": [1.0]}})
        assert parent.counter("hits").value == 4
        assert parent.histogram("lat").count == 1

    def test_merge_order_determinism(self):
        payloads = []
        for i in range(3):
            reg = MetricsRegistry()
            reg.counter("n").inc(i)
            reg.histogram("lat").observe(float(i))
            payloads.append(reg.to_payload())
        a, b = MetricsRegistry(), MetricsRegistry()
        for payload in payloads:
            a.merge(payload)
        for payload in payloads:
            b.merge(payload)
        assert a.to_payload() == b.to_payload()

    def test_records_sorted_and_typed(self):
        reg = MetricsRegistry()
        reg.counter("b.count").inc()
        reg.counter("a.count").inc()
        reg.gauge("z.depth").set(1)
        reg.histogram("m.lat").observe(0.1)
        records = reg.records()
        assert [r["name"] for r in records] == [
            "a.count", "b.count", "z.depth", "m.lat",
        ]
        assert [r["type"] for r in records] == [
            "counter", "counter", "gauge", "histogram",
        ]
        assert all(r["kind"] == "metric" for r in records)
        assert records[-1]["summary"]["count"] == 1

    def test_empty_registry(self):
        reg = MetricsRegistry()
        assert len(reg) == 0
        assert reg.records() == []
        assert reg.to_payload() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }


class TestFloatExactness:
    def test_histogram_values_kept_verbatim(self):
        h = Histogram("lat")
        h.observe(0.1)
        h.observe(0.2)
        assert h.sum == pytest.approx(0.3)
        assert h.values == [0.1, 0.2]
