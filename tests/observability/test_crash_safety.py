"""Crash-safety tests for the streaming sink (fault-harness driven).

Satellite contract from the fault-surface issue: certify that
``StreamingJsonlSink`` resumes cleanly and ``read_trace`` warns about
the torn tail when a **harness-injected** mid-write ``OSError`` tears
the file — no hand-truncated fixture files — plus the edge cases of
the WAL-style :func:`repro.observability.live._truncate_torn_tail`
recovery step (the line terminator is the commit marker).
"""

import json
import warnings

import pytest

from repro.observability.export import read_trace
from repro.observability.live import StreamingJsonlSink, _truncate_torn_tail
from repro.verify.faults import FaultInjectionHarness


def _tear_mid_write(real, call, self, record):
    """Injection wrapper: commit half the serialized line, then fail
    like a full disk would — a genuine mid-write ``OSError``."""
    text = json.dumps(record, sort_keys=True) + "\n"
    self._fh.write(text[: len(text) // 2])
    self._fh.flush()
    raise OSError(28, "No space left on device (injected)")


class TestInjectedTornWrite:
    def _tear(self, path):
        harness = FaultInjectionHarness()
        sink = StreamingJsonlSink(str(path), meta={"source": "crash-test"})
        sink.emit({"kind": "event", "event": "solve", "seq": 0})
        with harness.inject(
            StreamingJsonlSink, "_write_line", wrap=_tear_mid_write
        ):
            with pytest.raises(OSError):
                sink.emit({"kind": "event", "event": "solve", "seq": 1})
        sink.close()
        return sink

    def test_read_trace_warns_and_keeps_the_committed_prefix(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self._tear(path)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            records = read_trace(str(path))
        assert any(
            issubclass(w.category, UserWarning) and "torn tail" in str(w.message)
            for w in caught
        )
        assert [r.get("seq") for r in records if r.get("event") == "solve"] == [0]

    def test_resume_truncates_the_torn_tail_and_continues(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self._tear(path)
        resumed = StreamingJsonlSink(str(path), resume=True)
        resumed.emit({"kind": "event", "event": "solve", "seq": 2})
        resumed.close()
        # Fully well-formed now: no warning, one header, torn record gone.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            records = read_trace(str(path))
        assert sum(1 for r in records if r.get("kind") == "meta") == 1
        assert [r.get("seq") for r in records if r.get("event") == "solve"] == [0, 2]

    def test_sink_lock_is_released_after_the_fault(self, tmp_path):
        from repro.verify.faults import _lock_released

        path = tmp_path / "trace.jsonl"
        sink = self._tear(path)
        assert _lock_released(sink._lock)


class TestTruncateTornTail:
    def test_empty_file_is_untouched(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_bytes(b"")
        assert _truncate_torn_tail(str(path)) == 0
        assert path.read_bytes() == b""

    def test_clean_file_is_untouched(self, tmp_path):
        path = tmp_path / "t.jsonl"
        content = b'{"kind": "meta"}\n{"seq": 0}\n'
        path.write_bytes(content)
        assert _truncate_torn_tail(str(path)) == 0
        assert path.read_bytes() == content

    def test_torn_tail_is_dropped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_bytes(b'{"seq": 0}\n{"se')
        assert _truncate_torn_tail(str(path)) == 4
        assert path.read_bytes() == b'{"seq": 0}\n'

    def test_file_with_no_newline_at_all_empties(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_bytes(b'{"torn": tru')
        assert _truncate_torn_tail(str(path)) == 12
        assert path.read_bytes() == b""

    def test_torn_tail_longer_than_one_scan_chunk(self, tmp_path):
        """The backward scan crosses 4096-byte chunk boundaries."""
        path = tmp_path / "t.jsonl"
        committed = b'{"seq": 0}\n'
        torn = b'{"pad": "' + b"x" * 10_000
        path.write_bytes(committed + torn)
        assert _truncate_torn_tail(str(path)) == len(torn)
        assert path.read_bytes() == committed

    def test_resume_on_emptied_file_writes_a_fresh_header(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_bytes(b'{"torn": tru')  # no committed line at all
        sink = StreamingJsonlSink(str(path), resume=True)
        sink.emit({"kind": "event", "event": "solve", "seq": 0})
        sink.close()
        records = read_trace(str(path))
        assert records[0]["kind"] == "meta"
        assert [r.get("seq") for r in records if r.get("event") == "solve"] == [0]
