"""Unit tests for :mod:`repro.observability.slo`."""

import pytest

from repro.observability.live import TelemetryHub
from repro.observability.slo import SlidingWindow, SloSpec, SloTracker

LATENCY = SloSpec(
    name="latency-p99", metric="engine.batch.query_latency_s",
    objective=0.005, percentile=99.0, window_s=60.0, budget=0.01,
)


class TestSloSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="window_s"):
            SloSpec("x", "m", 1.0, window_s=0.0)
        with pytest.raises(ValueError, match="percentile"):
            SloSpec("x", "m", 1.0, percentile=0.0)
        with pytest.raises(ValueError, match="budget"):
            SloSpec("x", "m", 1.0, budget=0.0)


class TestSlidingWindow:
    def test_half_open_boundary_eviction(self):
        # An observation stamped exactly window_s ago is OUT: the window
        # is (now - w, now], so each point contributes for exactly w
        # seconds — no double-counting at the boundary.
        window = SlidingWindow(10.0)
        window.add(0.0, 1.0)
        window.add(0.5, 2.0)
        assert window.values(10.0) == [2.0]  # t=0.0 hit the boundary
        assert window.values(10.5) == []

    def test_values_inside_window_survive(self):
        window = SlidingWindow(10.0)
        for t in (1.0, 5.0, 9.0):
            window.add(t, t)
        assert window.values(9.0) == [1.0, 5.0, 9.0]
        assert window.values(11.5) == [5.0, 9.0]


class TestSloTracker:
    def feed(self, tracker, samples):
        for t, value in samples:
            tracker.observe(LATENCY.metric, value, t=t)

    def test_healthy_window_not_violating(self):
        tracker = SloTracker([LATENCY])
        self.feed(tracker, [(float(i), 0.001) for i in range(20)])
        (status,) = tracker.statuses()
        assert status["count"] == 20
        assert status["achieved"] == 0.001
        assert not status["violating"]
        assert status["burn_rate"] == 0.0

    def test_violation_and_burn_rate(self):
        tracker = SloTracker([LATENCY])
        # 10 observations, 2 breach the 5 ms objective -> 20% breach
        # fraction against a 1% budget: burning 20x faster than allowed.
        samples = [(float(i), 0.001) for i in range(8)]
        samples += [(8.0, 0.050), (9.0, 0.060)]
        self.feed(tracker, samples)
        (status,) = tracker.statuses(now=9.0)
        assert status["violating"]
        assert status["breach_fraction"] == pytest.approx(0.2)
        assert status["burn_rate"] == pytest.approx(20.0)

    def test_old_breaches_age_out(self):
        tracker = SloTracker([LATENCY])
        tracker.observe(LATENCY.metric, 0.100, t=0.0)
        self.feed(tracker, [(70.0 + i, 0.001) for i in range(5)])
        (status,) = tracker.statuses(now=74.0)
        assert not status["violating"]
        assert status["count"] == 5

    def test_as_hub_subscriber(self):
        tracker = SloTracker([LATENCY], clock=lambda: 3.0)
        hub = TelemetryHub([tracker], clock=lambda: 3.0)
        hub.publish_metric(LATENCY.metric, "observe", 0.002)
        hub.publish_metric("unrelated.metric", "observe", 9.0)
        hub.publish({"kind": "event", "event": "solve"})  # non-metric
        (status,) = tracker.statuses()
        assert status["count"] == 1
        assert status["p99"] == 0.002

    def test_statuses_default_now_is_newest_event(self):
        tracker = SloTracker([LATENCY])
        tracker.observe(LATENCY.metric, 0.001, t=100.0)
        tracker.observe(LATENCY.metric, 0.002, t=159.0)
        (status,) = tracker.statuses()  # now=159.0: both still inside
        assert status["count"] == 2

    def test_percentiles_match_nearest_rank(self):
        from repro.observability.metrics import nearest_rank

        values = [0.001 * i for i in range(1, 101)]
        tracker = SloTracker([LATENCY])
        # Timestamps all inside the 60 s window so nothing evicts.
        self.feed(tracker, [(0.1 * i, v) for i, v in enumerate(values)])
        (status,) = tracker.statuses(now=0.1 * len(values))
        ordered = sorted(values)
        assert status["p50"] == nearest_rank(ordered, 50)
        assert status["p95"] == nearest_rank(ordered, 95)
        assert status["p99"] == nearest_rank(ordered, 99)
