"""Unit tests for :mod:`repro.observability.spans`."""

import time

from repro.instrumentation.counters import NULL_COUNTER
from repro.observability.spans import NULL_SPAN, NULL_TRACER, NullSpan, Tracer


class TestNullSpan:
    def test_disabled_tracer_yields_shared_null_span(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("anything", n=10)
        assert span is NULL_SPAN
        assert NULL_TRACER.span("other") is NULL_SPAN

    def test_null_span_is_inert(self):
        with NULL_SPAN as span:
            span.set("p", 5)
            span.add("search_steps", 100)
            span.trace("temp_s_len", 3.0)
        assert span.counter is NULL_COUNTER
        assert NULL_COUNTER.as_dict() == {}
        assert not span.enabled

    def test_null_span_has_no_instance_state(self):
        assert NullSpan.__slots__ == ()

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        assert tracer.roots == []
        assert tracer.records() == []
        assert tracer.total_seconds() == 0.0


class TestSpanNesting:
    def test_with_blocks_build_the_tree(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a") as a:
                with tracer.span("leaf"):
                    pass
            with tracer.span("b"):
                pass
        assert tracer.roots == [root]
        assert [c.name for c in root.children] == ["a", "b"]
        assert [c.name for c in a.children] == ["leaf"]

    def test_sibling_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [s.name for s in tracer.roots] == ["first", "second"]

    def test_current_tracks_innermost_open_span(self):
        tracer = Tracer()
        assert tracer.current is NULL_SPAN
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is NULL_SPAN

    def test_out_of_order_exit_does_not_corrupt_stack(self):
        tracer = Tracer()
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        # Exit the outer span first; the stack must still drain.
        outer.__exit__(None, None, None)
        assert tracer.current is NULL_SPAN
        with tracer.span("next"):
            pass
        assert [s.name for s in tracer.roots] == ["outer", "next"]

    def test_duration_measured(self):
        tracer = Tracer()
        with tracer.span("sleepy") as span:
            time.sleep(0.01)
        assert span.duration_s >= 0.009
        assert tracer.total_seconds() >= 0.009

    def test_attrs_counts_and_traces(self):
        tracer = Tracer()
        with tracer.span("phase", n=100) as span:
            span.set("p", 7)
            span.add("search_steps")
            span.add("search_steps", 4)
            span.trace("temp_s_len", 2.0)
            span.trace("temp_s_len", 4.0)
        assert span.attrs == {"n": 100, "p": 7}
        assert span.counter.get("search_steps") == 5
        assert span.counter.trace_mean("temp_s_len") == 3.0


class TestIntrospection:
    def build(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                with tracer.span("leaf"):
                    pass
            with tracer.span("b"):
                pass
        return tracer

    def test_iter_spans_depth_first(self):
        tracer = self.build()
        assert [s.name for s in tracer.iter_spans()] == [
            "root", "a", "leaf", "b",
        ]

    def test_find(self):
        tracer = self.build()
        assert tracer.find("leaf").name == "leaf"
        assert tracer.find("missing") is None

    def test_records_paths_depth_order(self):
        tracer = self.build()
        records = tracer.records()
        assert [r["path"] for r in records] == [
            "root", "root/a", "root/a/leaf", "root/b",
        ]
        assert [r["depth"] for r in records] == [0, 1, 2, 1]
        assert [r["order"] for r in records] == [0, 1, 2, 3]
        assert all(r["kind"] == "span" for r in records)

    def test_records_carry_counts_and_trace_summaries(self):
        tracer = Tracer()
        with tracer.span("sweep") as span:
            span.add("search_steps", 12)
            for v in (1.0, 3.0):
                span.trace("temp_s_len", v)
        (record,) = tracer.records()
        assert record["counts"] == {"search_steps": 12}
        assert record["traces"]["temp_s_len"] == {
            "count": 2, "mean": 2.0, "max": 3.0,
        }

    def test_records_are_json_plain(self):
        import json

        tracer = self.build()
        json.dumps(tracer.records())  # must not raise
