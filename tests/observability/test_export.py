"""Unit tests for :mod:`repro.observability.export`."""

import json

import pytest

from repro.observability.export import (
    TRACE_SCHEMA_VERSION,
    aggregate_spans,
    metric_records,
    read_trace,
    span_records,
    trace_records,
    write_trace,
)
from repro.observability.metrics import MetricsRegistry
from repro.observability.spans import Tracer


def sample_tracer():
    tracer = Tracer()
    with tracer.span("root", n=100) as root:
        root.add("queries")
        with tracer.span("sweep") as sweep:
            sweep.add("search_steps", 10)
            sweep.trace("temp_s_len", 2.0)
    return tracer


class TestAssembly:
    def test_header_first_with_schema(self):
        records = trace_records(sample_tracer(), meta={"workload": "test"})
        assert records[0] == {
            "kind": "meta",
            "schema": TRACE_SCHEMA_VERSION,
            "workload": "test",
        }
        assert [r["kind"] for r in records[1:]] == ["span", "span"]

    def test_metrics_appended_after_spans(self):
        metrics = MetricsRegistry()
        metrics.counter("hits").inc()
        records = trace_records(sample_tracer(), metrics=metrics)
        assert [r["kind"] for r in records] == [
            "meta", "span", "span", "metric",
        ]

    def test_extra_spans_preserve_caller_order(self):
        extra = [
            {"kind": "span", "path": "w0", "query_index": 0},
            {"kind": "span", "path": "w1", "query_index": 1},
        ]
        records = trace_records(extra_spans=extra)
        assert records[1:] == extra


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        metrics = MetricsRegistry()
        metrics.histogram("lat").observe(0.25)
        path = str(tmp_path / "trace.jsonl")
        written = write_trace(
            path, tracer=sample_tracer(), metrics=metrics,
            meta={"workload": "round-trip"},
        )
        records = read_trace(path)
        assert len(records) == written == 4
        assert [r["kind"] for r in records] == ["meta", "span", "span", "metric"]
        assert records[0]["workload"] == "round-trip"
        (sweep,) = [r for r in records if r.get("name") == "sweep"]
        assert sweep["counts"] == {"search_steps": 10}
        assert sweep["traces"]["temp_s_len"]["max"] == 2.0

    def test_read_from_lines_skips_blank(self):
        lines = [
            json.dumps({"kind": "meta", "schema": 1}),
            "",
            "   ",
            json.dumps({"kind": "span", "path": "x"}),
        ]
        records = read_trace(lines)
        assert [r["kind"] for r in records] == ["meta", "span"]


class TestMalformedInput:
    def test_bad_json_mid_file_names_line_number(self):
        lines = [
            json.dumps({"kind": "meta", "schema": 1}),
            "{not json",
            json.dumps({"kind": "span", "path": "x"}),
        ]
        with pytest.raises(ValueError, match="line 2"):
            read_trace(lines)

    def test_untagged_record_mid_file_names_line_number(self):
        lines = [
            json.dumps({"kind": "meta", "schema": 1}),
            json.dumps([1, 2]),
            json.dumps({"kind": "span", "path": "x"}),
        ]
        with pytest.raises(ValueError, match="line 2"):
            read_trace(lines)

    def test_torn_tail_warns_and_skips(self):
        # A truncated final line is how a live stream looks mid-write;
        # it must not make the whole trace unreadable.
        lines = [
            json.dumps({"kind": "meta", "schema": 1}),
            json.dumps({"kind": "span", "path": "x"}),
            '{"kind": "event", "event": "metr',
        ]
        with pytest.warns(UserWarning, match="torn tail.*line 3"):
            records = read_trace(lines)
        assert [r["kind"] for r in records] == ["meta", "span"]

    def test_torn_tail_after_trailing_blanks(self):
        lines = [json.dumps({"kind": "meta", "schema": 1}), "{not json", "", "  "]
        with pytest.warns(UserWarning, match="line 2"):
            assert [r["kind"] for r in read_trace(lines)] == ["meta"]

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            read_trace(str(tmp_path / "nope.jsonl"))


class TestFilters:
    def test_span_and_metric_filters(self):
        metrics = MetricsRegistry()
        metrics.counter("hits").inc()
        records = trace_records(sample_tracer(), metrics=metrics)
        assert len(span_records(records)) == 2
        assert len(metric_records(records)) == 1


class TestAggregateSpans:
    def test_rollup_sums_calls_counts_and_traces(self):
        records = []
        for duration, steps, temps in ((0.5, 4, [1.0, 3.0]), (1.5, 6, [5.0])):
            records.append(
                {
                    "kind": "span",
                    "path": "solve/sweep",
                    "depth": 1,
                    "duration_s": duration,
                    "counts": {"search_steps": steps},
                    "traces": {
                        "temp_s_len": {
                            "count": len(temps),
                            "mean": sum(temps) / len(temps),
                            "max": max(temps),
                        }
                    },
                }
            )
        (row,) = aggregate_spans(records)
        assert row["calls"] == 2
        assert row["total_s"] == 2.0
        assert row["mean_s"] == 1.0
        assert row["counts"] == {"search_steps": 10}
        # Pooled mean is the mean of all 3 observations, not mean-of-means.
        pooled = row["traces"]["temp_s_len"]
        assert pooled["count"] == 3
        assert pooled["mean"] == pytest.approx(3.0)
        assert pooled["max"] == 5.0

    def test_first_seen_path_order(self):
        records = [
            {"kind": "span", "path": "b", "duration_s": 0.0, "counts": {}},
            {"kind": "span", "path": "a", "duration_s": 0.0, "counts": {}},
            {"kind": "span", "path": "b", "duration_s": 0.0, "counts": {}},
        ]
        assert [row["path"] for row in aggregate_spans(records)] == ["b", "a"]

    def test_non_span_records_ignored(self):
        assert aggregate_spans([{"kind": "meta"}, {"kind": "metric"}]) == []
