"""Unit tests for :mod:`repro.observability.profiler`."""

import threading

import pytest

from repro.observability.profiler import (
    ProfileSampler,
    profile_duration_estimate,
)


def busy_function_alpha(stop: threading.Event) -> None:
    while not stop.is_set():
        sum(i * i for i in range(200))


class TestSampling:
    def test_sample_once_skips_own_thread(self):
        sampler = ProfileSampler()
        sampler.sample_once()
        assert sampler.samples == 1
        # Only this thread is running, and it is skipped.
        for stack in sampler.counts:
            assert "sample_once" not in stack

    def test_observes_other_thread_stack(self):
        stop = threading.Event()
        worker = threading.Thread(
            target=busy_function_alpha, args=(stop,), daemon=True
        )
        worker.start()
        try:
            sampler = ProfileSampler()
            for _ in range(50):
                sampler.sample_once()
        finally:
            stop.set()
            worker.join()
        assert any(
            "busy_function_alpha" in stack for stack in sampler.counts
        ), sampler.counts

    def test_collapsed_stack_is_root_first(self):
        stop = threading.Event()
        worker = threading.Thread(
            target=busy_function_alpha, args=(stop,), daemon=True
        )
        worker.start()
        try:
            sampler = ProfileSampler()
            for _ in range(50):
                sampler.sample_once()
        finally:
            stop.set()
            worker.join()
        stack = next(s for s in sampler.counts if "busy_function_alpha" in s)
        frames = stack.split(";")
        # The leaf (deepest call) is last; thread bootstrap is first.
        assert "busy_function_alpha" in frames[-1] or "genexpr" in frames[-1]
        assert frames.index(
            next(f for f in frames if "busy_function_alpha" in f)
        ) > 0


class TestLifecycle:
    def test_context_manager_samples_in_background(self):
        stop = threading.Event()
        worker = threading.Thread(
            target=busy_function_alpha, args=(stop,), daemon=True
        )
        worker.start()
        try:
            with ProfileSampler(interval_s=0.001) as sampler:
                stop_at = threading.Event()
                stop_at.wait(0.1)
        finally:
            stop.set()
            worker.join()
        assert sampler.samples > 0
        assert profile_duration_estimate(sampler) == pytest.approx(
            sampler.samples * 0.001
        )

    def test_double_start_raises(self):
        sampler = ProfileSampler()
        sampler.start()
        try:
            with pytest.raises(RuntimeError):
                sampler.start()
        finally:
            sampler.stop()

    def test_stop_idempotent(self):
        sampler = ProfileSampler()
        sampler.stop()  # never started: no-op
        sampler.start()
        sampler.stop()
        sampler.stop()

    def test_stop_joins_sampler_thread(self):
        # Regression: stop() must not return while the daemon thread is
        # still sampling — a caller tearing down right after stop()
        # would race the final sample_once().
        sampler = ProfileSampler(interval_s=0.001)
        sampler.start()
        thread = sampler._thread
        assert thread is not None and thread.is_alive()
        sampler.stop()
        assert not thread.is_alive()
        assert sampler._thread is None

    def test_concurrent_stop_from_many_threads(self):
        # Regression: exactly one caller claims the handle and joins;
        # the rest return immediately — no double-join, no deadlock with
        # an in-flight sample_once() holding the sampler lock.
        for _ in range(5):
            sampler = ProfileSampler(interval_s=0.0005)
            sampler.start()
            barrier = threading.Barrier(4)
            errors = []

            def stopper():
                try:
                    barrier.wait()
                    sampler.stop()
                except BaseException as exc:  # pragma: no cover - fail loud
                    errors.append(exc)

            stoppers = [threading.Thread(target=stopper) for _ in range(4)]
            for t in stoppers:
                t.start()
            for t in stoppers:
                t.join(timeout=5.0)
            assert not any(t.is_alive() for t in stoppers), "stop() deadlocked"
            assert errors == []
            assert sampler._thread is None

    def test_restart_after_stop(self):
        sampler = ProfileSampler(interval_s=0.001)
        sampler.start()
        sampler.stop()
        sampler.start()  # handle was cleared: restart is legal
        sampler.stop()

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            ProfileSampler(interval_s=0.0)


class TestOutput:
    def sampled(self):
        sampler = ProfileSampler()
        sampler.counts = {"a:f;b:g": 3, "a:f;c:h": 1}
        return sampler

    def test_collapsed_lines_sorted_flamegraph_format(self):
        assert self.sampled().collapsed_lines() == [
            "a:f;b:g 3",
            "a:f;c:h 1",
        ]

    def test_write_collapsed_round_trip(self, tmp_path):
        path = str(tmp_path / "p.collapsed")
        count = self.sampled().write_collapsed(path)
        assert count == 2
        lines = open(path).read().splitlines()
        assert lines == ["a:f;b:g 3", "a:f;c:h 1"]

    def test_top_stacks_hottest_first(self):
        top = self.sampled().top_stacks(limit=1)
        assert len(top) == 1
        assert "a:f;b:g" in top[0]
