"""Unit tests for :mod:`repro.observability.live` — hub, sinks, rings."""

import json

import pytest

from repro.observability.live import (
    NULL_HUB,
    CallbackSubscriber,
    NullTelemetryHub,
    RingBufferSubscriber,
    StreamingJsonlSink,
    TelemetryHub,
    TRACE_SCHEMA_VERSION,
)


class TestNullHub:
    def test_disabled_and_inert(self):
        assert NULL_HUB.enabled is False
        NULL_HUB.publish({"kind": "event"})
        NULL_HUB.publish_span({"path": "x"})
        NULL_HUB.publish_metric("m", "observe", 1.0)
        NULL_HUB.close()

    def test_subscribe_refused(self):
        with pytest.raises(RuntimeError):
            NULL_HUB.subscribe(RingBufferSubscriber())

    def test_shared_singleton(self):
        assert isinstance(NULL_HUB, NullTelemetryHub)
        assert NullTelemetryHub.enabled is False


class TestTelemetryHub:
    def test_fans_out_in_subscription_order(self):
        order = []
        hub = TelemetryHub(clock=lambda: 1.0)
        hub.subscribe(CallbackSubscriber(lambda e: order.append(("a", e))))
        hub.subscribe(CallbackSubscriber(lambda e: order.append(("b", e))))
        hub.publish({"kind": "event", "event": "x"})
        assert [name for name, _ in order] == ["a", "b"]

    def test_stamps_monotonic_t(self):
        ticks = iter([5.0, 6.0])
        hub = TelemetryHub(clock=lambda: next(ticks))
        ring = RingBufferSubscriber()
        hub.subscribe(ring)
        hub.publish({"kind": "event", "event": "x"})
        hub.publish({"kind": "event", "event": "y", "t": 42.0})
        first, second = ring.events()
        assert first["t"] == 5.0
        assert second["t"] == 42.0  # caller-provided t wins

    def test_publish_metric_shape(self):
        hub = TelemetryHub(clock=lambda: 0.5)
        ring = RingBufferSubscriber()
        hub.subscribe(ring)
        hub.publish_metric("lat", "observe", 0.25)
        (event,) = ring.events()
        assert event == {
            "kind": "event", "event": "metric", "metric": "observe",
            "name": "lat", "value": 0.25, "t": 0.5,
        }

    def test_publish_span_wraps_record(self):
        hub = TelemetryHub(clock=lambda: 0.0)
        ring = RingBufferSubscriber()
        hub.subscribe(ring)
        hub.publish_span({"path": "solve", "duration_s": 1.0})
        (event,) = ring.events()
        assert event["kind"] == "event"
        assert event["event"] == "span"
        assert event["path"] == "solve"

    def test_raising_subscriber_dropped_not_fatal(self):
        def boom(event):
            raise RuntimeError("sink died")

        hub = TelemetryHub(clock=lambda: 0.0)
        ring = RingBufferSubscriber()
        hub.subscribe(CallbackSubscriber(boom))
        hub.subscribe(ring)
        hub.publish({"kind": "event", "event": "a"})
        hub.publish({"kind": "event", "event": "b"})
        assert len(ring) == 2  # healthy subscriber kept receiving
        assert len(hub.subscribers) == 1
        assert "sink died" in hub.errors[0]

    def test_close_closes_subscribers(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        sink = StreamingJsonlSink(path)
        hub = TelemetryHub([sink])
        hub.close()
        with pytest.raises(ValueError, match="closed"):
            sink.emit({"kind": "event"})


class TestStreamingJsonlSink:
    def test_writes_v2_header_then_lines(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        with StreamingJsonlSink(path, meta={"workload": "t"}) as sink:
            sink.emit({"kind": "event", "event": "x", "t": 1.0})
        lines = [json.loads(line) for line in open(path)]
        assert lines[0]["kind"] == "meta"
        assert lines[0]["schema"] == TRACE_SCHEMA_VERSION
        assert lines[0]["stream"] is True
        assert lines[0]["workload"] == "t"
        assert lines[1]["event"] == "x"
        assert sink.lines_written == 2

    def test_each_line_complete_and_flushed(self, tmp_path):
        # Crash-safety contract: the file is parseable after every emit,
        # without waiting for close().
        path = str(tmp_path / "s.jsonl")
        sink = StreamingJsonlSink(path)
        sink.emit({"kind": "event", "event": "x", "t": 1.0})
        raw = open(path).read()
        assert raw.endswith("\n")
        assert len(raw.splitlines()) == 2
        sink.close()

    def test_resume_appends_without_second_header(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        with StreamingJsonlSink(path) as sink:
            sink.emit({"kind": "event", "event": "x", "t": 1.0})
        with StreamingJsonlSink(path, resume=True) as sink:
            sink.emit({"kind": "event", "event": "y", "t": 2.0})
        lines = [json.loads(line) for line in open(path)]
        assert [r["kind"] for r in lines] == ["meta", "event", "event"]

    def test_resume_on_missing_file_writes_header(self, tmp_path):
        path = str(tmp_path / "fresh.jsonl")
        with StreamingJsonlSink(path, resume=True):
            pass
        (header,) = [json.loads(line) for line in open(path)]
        assert header["kind"] == "meta"


class TestRingBufferSubscriber:
    def test_bounded_keeps_newest(self):
        ring = RingBufferSubscriber(capacity=3)
        for i in range(10):
            ring.emit({"kind": "event", "i": i})
        assert [e["i"] for e in ring.events()] == [7, 8, 9]
        assert len(ring) == ring.capacity == 3

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            RingBufferSubscriber(capacity=0)
