"""Monotonicity of the analytic OpCounter telemetry.

The empirical complexity gate (:mod:`repro.verify.empirical`) fits
growth exponents against counter totals, which is only sound if the
counters are non-decreasing in the instance size.  This property test
extends 50 random chains one prefix at a time under a fixed bound and
asserts the totals never go down.
"""

import random

import pytest

from repro.core.bandwidth import bandwidth_min
from repro.core.prime_subpaths import compute_prime_structure
from repro.graphs.chain import Chain
from repro.graphs.generators import random_chain
from repro.instrumentation.counters import OpCounter

NUM_CHAINS = 50
MAX_N = 40
PREFIX_STEP = 4


def _prefixes(chain: Chain):
    """Sub-chains over the first ``k`` tasks for growing ``k``."""
    for k in range(2, chain.num_tasks + 1, PREFIX_STEP):
        yield Chain(list(chain.alpha[:k]), list(chain.beta[: k - 1]))


def _cases():
    rng = random.Random("monotonicity")
    for case in range(NUM_CHAINS):
        n = rng.randint(8, MAX_N)
        chain = random_chain(n, rng=random.Random(f"monotone:{case}"))
        # A bound all prefixes can satisfy, comfortably above max alpha so
        # prime subpaths have room to grow with n.
        bound = max(chain.alpha) * 2.0 + 1.0
        yield pytest.param(chain, bound, id=f"chain{case}-n{n}")


def _structure_ops(chain: Chain, bound: float) -> float:
    counter = OpCounter()
    compute_prime_structure(chain, bound, counter=counter)
    return float(sum(counter.as_dict().values()))


def _bandwidth_ops(chain: Chain, bound: float) -> float:
    counter = OpCounter()
    structure = compute_prime_structure(chain, bound, counter=counter)
    result = bandwidth_min(chain, bound, structure=structure, collect_stats=True)
    assert result.stats is not None
    return float(sum(counter.as_dict().values()) + result.stats.search_steps)


@pytest.mark.parametrize("chain,bound", _cases())
def test_counters_non_decreasing_under_prefix_extension(chain, bound):
    prev_structure = 0.0
    prev_bandwidth = 0.0
    for prefix in _prefixes(chain):
        structure_ops = _structure_ops(prefix, bound)
        bandwidth_ops = _bandwidth_ops(prefix, bound)
        assert structure_ops >= prev_structure, (
            f"compute_prime_structure ops dropped at n={prefix.num_tasks}"
        )
        assert bandwidth_ops >= prev_bandwidth, (
            f"bandwidth_min ops dropped at n={prefix.num_tasks}"
        )
        prev_structure = structure_ops
        prev_bandwidth = bandwidth_ops
