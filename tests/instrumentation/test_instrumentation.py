"""Unit tests for :mod:`repro.instrumentation`."""

import time

import pytest

from repro.instrumentation.counters import NULL_COUNTER, AlgorithmStats, OpCounter
from repro.instrumentation.rng import spawn_rng
from repro.instrumentation.stopwatch import Stopwatch


class TestOpCounter:
    def test_add_and_get(self):
        c = OpCounter()
        c.add("x")
        c.add("x", 4)
        assert c.get("x") == 5
        assert c.get("missing") == 0

    def test_traces(self):
        c = OpCounter()
        for v in (1.0, 3.0, 2.0):
            c.trace("len", v)
        assert c.trace_mean("len") == pytest.approx(2.0)
        assert c.trace_max("len") == 3.0
        assert c.trace_mean("missing") == 0.0
        assert c.trace_max("missing") == 0.0

    def test_merge(self):
        a, b = OpCounter(), OpCounter()
        a.add("x", 2)
        b.add("x", 3)
        b.trace("t", 1.0)
        a.merge(b)
        assert a.get("x") == 5
        assert a.traces["t"] == [1.0]

    def test_as_dict(self):
        c = OpCounter()
        c.add("a")
        assert c.as_dict() == {"a": 1}

    def test_disabled_counter_records_nothing(self):
        c = OpCounter(enabled=False)  # repro-lint: disable=REPRO005 (testing the disabled path)
        c.add("x", 100)
        c.trace("len", 5.0)
        assert c.get("x") == 0
        assert c.trace_max("len") == 0.0
        assert c.as_dict() == {}

    def test_null_counter_is_shared_noop(self):
        NULL_COUNTER.add("x")
        NULL_COUNTER.trace("t", 1.0)
        assert NULL_COUNTER.as_dict() == {}
        assert not NULL_COUNTER.enabled

    def test_merge_into_disabled_counter_is_noop(self):
        # Regression: merge() used to ignore `enabled`, so merging into
        # the shared NULL_COUNTER polluted every disabled call site.
        src = OpCounter()
        src.add("x", 7)
        src.trace("t", 2.0)
        disabled = OpCounter(enabled=False)  # repro-lint: disable=REPRO005 (testing the disabled path)
        disabled.merge(src)
        assert disabled.get("x") == 0
        assert disabled.as_dict() == {}
        assert disabled.traces == {}

    def test_null_counter_survives_merge_unpolluted(self):
        src = OpCounter()
        src.add("search_steps", 100)
        src.trace("temp_s_len", 9.0)
        NULL_COUNTER.merge(src)
        assert NULL_COUNTER.as_dict() == {}
        assert NULL_COUNTER.trace_max("temp_s_len") == 0.0

    def test_disabled_counter_allocates_no_default_entries(self):
        # A disabled counter's mappings are plain dicts: a stray read
        # like `counter.counts[k]` raises instead of silently inserting.
        disabled = OpCounter(enabled=False)  # repro-lint: disable=REPRO005 (testing the disabled path)
        with pytest.raises(KeyError):
            disabled.counts["x"]
        with pytest.raises(KeyError):
            disabled.traces["t"]


class TestAlgorithmStats:
    def test_q_and_plogq(self):
        stats = AlgorithmStats(100)
        stats.p = 10
        stats.q_values = [4, 4, 4, 4]
        assert stats.q == 4.0
        assert stats.p_log_q == pytest.approx(20.0)  # 10 * log2(4)

    def test_plogq_zero_for_small_q(self):
        stats = AlgorithmStats(100)
        stats.p = 10
        stats.q_values = [1, 1]
        assert stats.p_log_q == 0.0

    def test_nlogn(self):
        stats = AlgorithmStats(8)
        assert stats.n_log_n == pytest.approx(24.0)
        assert AlgorithmStats(1).n_log_n == 0.0

    def test_empty_q(self):
        stats = AlgorithmStats(5)
        assert stats.q == 0.0

    def test_as_dict_keys(self):
        keys = set(AlgorithmStats(5).as_dict())
        assert {"n", "p", "q", "p_log_q", "n_log_n"} <= keys


class TestSpawnRng:
    def test_deterministic(self):
        assert spawn_rng(1, "a", 2).random() == spawn_rng(1, "a", 2).random()

    def test_labels_matter(self):
        assert spawn_rng(1, "a").random() != spawn_rng(1, "b").random()

    def test_seed_matters(self):
        assert spawn_rng(1, "a").random() != spawn_rng(2, "a").random()


class TestStopwatch:
    def test_measures(self):
        watch = Stopwatch()
        with watch:
            time.sleep(0.01)
        assert watch.total >= 0.009

    def test_accumulates(self):
        watch = Stopwatch()
        with watch:
            pass
        first = watch.total
        with watch:
            pass
        assert watch.total >= first

    def test_double_start(self):
        watch = Stopwatch()
        watch.start()
        with pytest.raises(RuntimeError):
            watch.start()
        watch.stop()

    def test_stop_without_start(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()
