"""Unit tests for the logic simulator (:mod:`repro.desim.simulator`)."""

import pytest

from repro.desim.circuit import Circuit
from repro.desim.netlists import inverter_ring, ring_counter, shift_register
from repro.desim.simulator import LogicSimulator


class TestCombinational:
    def test_and_gate_responds_to_inputs(self):
        c = Circuit()
        c.add_gate("INPUT")
        c.add_gate("INPUT")
        c.add_gate("AND", [0, 1])
        sim = LogicSimulator(c)
        result = sim.run(50.0, stimuli=[(1.0, 0, True), (2.0, 1, True)])
        assert result.final_values[2] is True

    def test_and_gate_stays_low(self):
        c = Circuit()
        c.add_gate("INPUT")
        c.add_gate("INPUT")
        c.add_gate("AND", [0, 1])
        result = LogicSimulator(c).run(50.0, stimuli=[(1.0, 0, True)])
        assert result.final_values[2] is False

    def test_initial_settling_of_not(self):
        c = Circuit()
        c.add_gate("INPUT")
        c.add_gate("NOT", [0])
        result = LogicSimulator(c).run(50.0)
        # NOT of the initial False must settle to True without stimulus.
        assert result.final_values[1] is True

    def test_glitch_absorbed(self):
        c = Circuit()
        c.add_gate("INPUT")
        c.add_gate("BUF", [0])
        # Pulse shorter than nothing: set True then back False at same
        # effective value — only real changes propagate.
        result = LogicSimulator(c).run(
            50.0, stimuli=[(1.0, 0, True), (2.0, 0, True)]
        )
        deliveries = result.deliveries.get((0, 1), 0)
        assert deliveries == 1  # second event carried no change

    def test_stimuli_only_on_inputs(self):
        c = Circuit()
        c.add_gate("INPUT")
        c.add_gate("NOT", [0])
        with pytest.raises(ValueError, match="primary input"):
            LogicSimulator(c).run(10.0, stimuli=[(1.0, 1, True)])


class TestSequential:
    def test_shift_register_shifts(self):
        c = shift_register(4)
        sim = LogicSimulator(c, clock_period=10.0)
        # Drive input high at t=1; each tick shifts one stage.
        result = sim.run(65.0, stimuli=[(1.0, 0, True)])
        # After 5-6 ticks every DFF holds True.
        assert all(result.final_values[1:])

    def test_shift_register_propagation_order(self):
        c = shift_register(4)
        sim = LogicSimulator(c, clock_period=10.0)
        result = sim.run(25.0, stimuli=[(1.0, 0, True)])
        values = result.final_values
        # After 2 ticks only the first two DFFs are high.
        assert values[1] is True and values[2] is True
        assert values[3] is False and values[4] is False

    def test_ring_counter_oscillates(self):
        c = ring_counter(4)
        result = LogicSimulator(c, clock_period=10.0).run(400.0)
        assert result.events_processed > 0
        assert result.total_messages > 0

    def test_inverter_ring_oscillates(self):
        c = inverter_ring(5)
        result = LogicSimulator(c).run(100.0)
        assert result.events_processed > 10

    def test_dff_samples_on_clock_only(self):
        c = Circuit()
        c.add_gate("INPUT")
        c.add_gate("DFF", [0])
        sim = LogicSimulator(c, clock_period=10.0)
        # Input rises at t=12, after the first tick: DFF must still be
        # low at t=15 and high after the second tick.
        early = sim.run(15.0, stimuli=[(12.0, 0, True)])
        assert early.final_values[1] is False
        late = sim.run(25.0, stimuli=[(12.0, 0, True)])
        assert late.final_values[1] is True


class TestGuards:
    def test_runaway_guard(self):
        c = inverter_ring(3)
        sim = LogicSimulator(c)
        with pytest.raises(RuntimeError, match="runaway"):
            sim.run(1e7, max_events=500)

    def test_bad_clock_period(self):
        with pytest.raises(ValueError):
            LogicSimulator(Circuit(), clock_period=0.0)

    def test_bad_initial_values(self):
        c = shift_register(2)
        with pytest.raises(ValueError, match="every gate"):
            LogicSimulator(c).run(10.0, initial_values=[True])


class TestAccounting:
    def test_activity_floor(self):
        c = shift_register(2)
        result = LogicSimulator(c).run(5.0)
        assert all(a >= 1.0 for a in result.activity())

    def test_deliveries_attributed_to_wires(self):
        c = ring_counter(4)
        result = LogicSimulator(c, clock_period=10.0).run(200.0)
        wires = set(c.wire_pairs())
        for (src, dst), count in result.deliveries.items():
            key = (src, dst) if src < dst else (dst, src)
            assert key in wires
            assert count > 0

    def test_deterministic(self):
        c = ring_counter(5)
        a = LogicSimulator(c, clock_period=10.0).run(300.0)
        b = LogicSimulator(c, clock_period=10.0).run(300.0)
        assert a.final_values == b.final_values
        assert a.deliveries == b.deliveries
