"""Unit tests for the Time Warp engine (:mod:`repro.desim.timewarp`)."""

import random

import pytest

from repro.desim.netlists import (
    adder_pipeline,
    inverter_ring,
    random_glue_circuit,
    ring_counter,
    shift_register,
)
from repro.desim.parallel import ParallelLogicSimulator
from repro.desim.timewarp import TimeWarpSimulator


def reference(circuit, end, stim=None):
    return ParallelLogicSimulator(circuit, [0] * circuit.num_gates).run(
        end, stimuli=stim
    )


class TestConstruction:
    def test_validation(self):
        circuit = ring_counter(4)
        with pytest.raises(ValueError, match="cover"):
            TimeWarpSimulator(circuit, [0])
        with pytest.raises(ValueError, match="batch"):
            TimeWarpSimulator(circuit, [0] * circuit.num_gates, batch=0)
        with pytest.raises(ValueError, match="clock"):
            TimeWarpSimulator(
                circuit, [0] * circuit.num_gates, clock_period=0
            )


class TestCommittedEquivalence:
    """The Time Warp theorem, mechanized: committed results equal the
    conservative/sequential run exactly."""

    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_ring_counter(self, k):
        circuit = ring_counter(16)
        ref = reference(circuit, 500.0)
        tw = TimeWarpSimulator(
            circuit, [g % k for g in range(circuit.num_gates)]
        ).run(500.0)
        assert tw.final_values == ref.final_values
        assert tw.evaluations == ref.evaluations
        assert tw.deliveries == ref.deliveries

    @pytest.mark.parametrize("batch", [1, 3, 16])
    def test_batch_quantum_does_not_change_results(self, batch):
        circuit = inverter_ring(9)
        ref = reference(circuit, 150.0)
        tw = TimeWarpSimulator(
            circuit,
            [g % 3 for g in range(circuit.num_gates)],
            batch=batch,
        ).run(150.0)
        assert tw.final_values == ref.final_values
        assert tw.evaluations == ref.evaluations

    def test_with_stimuli(self):
        circuit = shift_register(10)
        stim = [(float(t), 0, (t // 20) % 2 == 0) for t in range(0, 300, 20)]
        ref = reference(circuit, 400.0, stim)
        tw = TimeWarpSimulator(
            circuit, [g % 3 for g in range(circuit.num_gates)]
        ).run(400.0, stimuli=stim)
        assert tw.final_values == ref.final_values
        assert tw.deliveries == ref.deliveries

    def test_adder_pipeline(self):
        circuit, _ = adder_pipeline(4, bits=3)
        stim = [
            (float(t), g, (t // 40 + g) % 2 == 0)
            for t in range(0, 400, 40)
            for g in circuit.primary_inputs()
        ]
        ref = reference(circuit, 500.0, stim)
        tw = TimeWarpSimulator(
            circuit, [g % 5 for g in range(circuit.num_gates)], batch=4
        ).run(500.0, stimuli=stim)
        assert tw.final_values == ref.final_values
        assert tw.evaluations == ref.evaluations
        assert tw.deliveries == ref.deliveries

    def test_random_partitions(self):
        rng = random.Random(31)
        circuit = random_glue_circuit(50, rng)
        stim = [
            (float(t), g, rng.random() < 0.5)
            for t in range(0, 250, 25)
            for g in circuit.primary_inputs()
        ]
        ref = reference(circuit, 350.0, stim)
        for k in (2, 3, 5):
            assignment = [rng.randrange(k) for _ in range(circuit.num_gates)]
            tw = TimeWarpSimulator(circuit, assignment, batch=6).run(
                350.0, stimuli=stim
            )
            assert tw.final_values == ref.final_values
            assert tw.evaluations == ref.evaluations


class TestOptimismCosts:
    def test_single_lp_never_rolls_back(self):
        circuit = ring_counter(12)
        tw = TimeWarpSimulator(circuit, [0] * circuit.num_gates).run(400.0)
        assert tw.rollbacks == 0
        assert tw.events_rolled_back == 0
        assert tw.anti_messages == 0
        assert tw.wasted_fraction == 0.0

    def test_rollbacks_occur_under_scattering(self):
        circuit = ring_counter(32)
        tw = TimeWarpSimulator(
            circuit, [g % 4 for g in range(circuit.num_gates)]
        ).run(800.0)
        assert tw.rollbacks > 0
        assert tw.events_rolled_back > 0

    def test_committed_events_consistent(self):
        circuit = ring_counter(16)
        tw = TimeWarpSimulator(
            circuit, [g % 4 for g in range(circuit.num_gates)]
        ).run(500.0)
        assert tw.committed_events == tw.events_executed - tw.events_rolled_back
        assert 0.0 <= tw.wasted_fraction < 1.0

    def test_locality_reduces_messages_same_commit(self):
        circuit = ring_counter(32)
        contiguous = [min(g // 9, 3) for g in range(circuit.num_gates)]
        scattered = [g % 4 for g in range(circuit.num_gates)]
        tw_good = TimeWarpSimulator(circuit, contiguous).run(800.0)
        tw_bad = TimeWarpSimulator(circuit, scattered).run(800.0)
        # Same committed simulation (the committed message *totals* are
        # partition-independent) ...
        assert tw_good.deliveries == tw_bad.deliveries
        assert tw_good.total_messages == tw_bad.total_messages
        # ... but locality keeps the traffic on-processor.  (Rollback
        # counts depend on timing texture, not just locality, so they
        # are reported rather than asserted here.)
        assert tw_good.cross_messages < tw_bad.cross_messages
        assert tw_good.rollbacks >= 0 and tw_bad.rollbacks >= 0

    def test_runaway_guard(self):
        circuit = inverter_ring(3)
        sim = TimeWarpSimulator(circuit, [g % 2 for g in range(3)])
        with pytest.raises(RuntimeError, match="exceeded"):
            sim.run(1e7, max_events=200)

    def test_rejects_bad_stimuli(self):
        circuit = shift_register(3)
        sim = TimeWarpSimulator(circuit, [0] * circuit.num_gates)
        with pytest.raises(ValueError, match="primary input"):
            sim.run(10.0, stimuli=[(1.0, 3, True)])


class TestFossilCollection:
    def test_memory_stays_bounded(self):
        circuit = ring_counter(32)
        tw = TimeWarpSimulator(
            circuit, [g % 4 for g in range(circuit.num_gates)]
        ).run(5000.0)
        # A long run must not accumulate its whole history.
        assert tw.fossils_collected > 0
        assert tw.max_live_records < tw.events_executed / 3

    def test_collection_preserves_results(self):
        circuit = ring_counter(24)
        ref = reference(circuit, 3000.0)
        tw = TimeWarpSimulator(
            circuit, [g % 3 for g in range(circuit.num_gates)]
        ).run(3000.0)
        assert tw.final_values == ref.final_values
        assert tw.evaluations == ref.evaluations
        assert tw.deliveries == ref.deliveries

    def test_counters_nonnegative(self):
        circuit = ring_counter(8)
        tw = TimeWarpSimulator(
            circuit, [g % 2 for g in range(circuit.num_gates)]
        ).run(400.0)
        assert tw.fossils_collected >= 0
        assert tw.max_live_records >= 0
