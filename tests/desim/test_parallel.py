"""Unit tests for the conservative parallel simulator
(:mod:`repro.desim.parallel`)."""

import random

import pytest

from repro.desim.netlists import (
    adder_pipeline,
    inverter_ring,
    random_glue_circuit,
    ring_counter,
    shift_register,
)
from repro.desim.parallel import ParallelLogicSimulator
from repro.desim.simulator import LogicSimulator
from repro.machine.interconnect import SharedBus
from repro.machine.machine import SharedMemoryMachine


def round_robin(circuit, k):
    return [g % k for g in range(circuit.num_gates)]


class TestConstruction:
    def test_lookahead_is_min_gate_delay(self):
        circuit = ring_counter(4)  # DFF delay 1, NOT delay 1
        sim = ParallelLogicSimulator(circuit, round_robin(circuit, 2))
        assert sim.lookahead == 1.0

    def test_validation(self):
        circuit = ring_counter(4)
        with pytest.raises(ValueError, match="cover"):
            ParallelLogicSimulator(circuit, [0])
        with pytest.raises(ValueError, match="clock"):
            ParallelLogicSimulator(
                circuit, round_robin(circuit, 2), clock_period=0
            )
        with pytest.raises(ValueError, match="non-negative"):
            ParallelLogicSimulator(circuit, [-1] * circuit.num_gates)

    def test_num_lps(self):
        circuit = ring_counter(4)
        sim = ParallelLogicSimulator(circuit, round_robin(circuit, 3))
        assert sim.num_lps == 3


class TestEquivalenceWithSequential:
    """Final values always match the original event-driven simulator;
    1-LP runs match it exactly (same tie order on these circuits)."""

    @pytest.mark.parametrize("k", [1, 2, 5])
    def test_ring_counter(self, k):
        circuit = ring_counter(12)
        seq = LogicSimulator(circuit).run(400.0)
        par = ParallelLogicSimulator(circuit, round_robin(circuit, k)).run(400.0)
        assert par.final_values == seq.final_values

    @pytest.mark.parametrize("k", [1, 3])
    def test_shift_register_with_stimuli(self, k):
        circuit = shift_register(10)
        stim = [(float(t), 0, (t // 20) % 2 == 0) for t in range(0, 300, 20)]
        seq = LogicSimulator(circuit).run(400.0, stimuli=stim)
        par = ParallelLogicSimulator(circuit, round_robin(circuit, k)).run(
            400.0, stimuli=stim
        )
        assert par.final_values == seq.final_values
        assert par.evaluations == seq.evaluations
        assert par.deliveries == seq.deliveries

    def test_inverter_ring(self):
        circuit = inverter_ring(9)
        seq = LogicSimulator(circuit).run(150.0)
        par = ParallelLogicSimulator(circuit, round_robin(circuit, 3)).run(150.0)
        assert par.final_values == seq.final_values


class TestPartitionInvariance:
    """The engine's headline guarantee: any partition produces the
    identical simulation (values, evaluations, deliveries)."""

    def test_adder_many_partitions(self):
        circuit, _ = adder_pipeline(4, bits=3)
        stim = [
            (float(t), g, (t // 40 + g) % 2 == 0)
            for t in range(0, 400, 40)
            for g in circuit.primary_inputs()
        ]
        reference = ParallelLogicSimulator(
            circuit, round_robin(circuit, 1)
        ).run(500.0, stimuli=stim)
        rng = random.Random(1)
        for k in (2, 3, 7):
            for _ in range(2):
                assignment = [rng.randrange(k) for _ in range(circuit.num_gates)]
                run = ParallelLogicSimulator(circuit, assignment).run(
                    500.0, stimuli=stim
                )
                assert run.final_values == reference.final_values
                assert run.evaluations == reference.evaluations
                assert run.deliveries == reference.deliveries

    def test_message_counts_depend_on_partition_only(self):
        circuit = ring_counter(12)
        contiguous = [min(g // 4, 2) for g in range(circuit.num_gates)]
        scattered = round_robin(circuit, 3)
        a = ParallelLogicSimulator(circuit, contiguous).run(400.0)
        b = ParallelLogicSimulator(circuit, scattered).run(400.0)
        assert a.total_messages == b.total_messages
        assert a.cross_messages < b.cross_messages


class TestStimuliHandling:
    def test_glitchless_stimuli_prefilter(self):
        circuit = shift_register(3)
        # Repeated values must be dropped exactly like the sequential
        # engine's owner-side skip.
        stim = [(1.0, 0, True), (2.0, 0, True), (3.0, 0, False),
                (4.0, 0, False)]
        seq = LogicSimulator(circuit).run(100.0, stimuli=stim)
        par = ParallelLogicSimulator(circuit, round_robin(circuit, 2)).run(
            100.0, stimuli=stim
        )
        assert par.final_values == seq.final_values
        assert sum(par.deliveries.values()) == seq.total_messages

    def test_rejects_non_input_stimuli(self):
        circuit = shift_register(3)
        sim = ParallelLogicSimulator(circuit, round_robin(circuit, 2))
        with pytest.raises(ValueError, match="primary input"):
            sim.run(10.0, stimuli=[(1.0, 2, True)])

    def test_runaway_guard(self):
        circuit = inverter_ring(3)
        sim = ParallelLogicSimulator(circuit, round_robin(circuit, 2))
        with pytest.raises(RuntimeError, match="runaway"):
            sim.run(1e7, max_events=300)


class TestCostAccounting:
    def test_work_conservation(self):
        circuit = ring_counter(12)
        run = ParallelLogicSimulator(circuit, round_robin(circuit, 3)).run(400.0)
        total = sum(
            run.evaluations[g.ident] * g.cost for g in circuit.gates
        )
        assert run.sequential_work == pytest.approx(total)

    def test_critical_path_between_bounds(self):
        circuit = ring_counter(24)
        run = ParallelLogicSimulator(circuit, round_robin(circuit, 4)).run(600.0)
        assert run.critical_path_work <= run.sequential_work + 1e-9
        assert run.critical_path_work >= run.sequential_work / run.num_lps - 1e-9

    def test_single_lp_critical_equals_sequential(self):
        circuit = ring_counter(8)
        run = ParallelLogicSimulator(circuit, round_robin(circuit, 1)).run(300.0)
        assert run.critical_path_work == pytest.approx(run.sequential_work)
        assert run.cross_messages == 0

    def test_estimated_speedup_improves_with_lps(self):
        circuit = ring_counter(32)
        machine = SharedMemoryMachine(8, interconnect=SharedBus(bandwidth=1e6))
        one = ParallelLogicSimulator(circuit, round_robin(circuit, 1)).run(800.0)
        four = ParallelLogicSimulator(
            circuit, [min(g // 9, 3) for g in range(circuit.num_gates)]
        ).run(800.0)
        assert four.estimated_speedup(machine) > one.estimated_speedup(machine)

    def test_estimated_times_structure(self):
        circuit = ring_counter(8)
        machine = SharedMemoryMachine(4, interconnect=SharedBus(bandwidth=10))
        run = ParallelLogicSimulator(circuit, round_robin(circuit, 2)).run(300.0)
        sequential, parallel = run.estimated_times(
            machine, barrier_time=0.1
        )
        assert sequential > 0
        assert parallel >= run.windows * 0.1

    def test_windows_positive(self):
        circuit = ring_counter(8)
        run = ParallelLogicSimulator(circuit, round_robin(circuit, 2)).run(300.0)
        assert run.windows > 0
        assert len(run.window_lp_work) == run.windows
