"""Unit tests for the gate models (:mod:`repro.desim.gates`)."""

import pytest

from repro.desim.gates import GATE_TYPES, evaluate_gate, gate_cost, gate_delay


class TestEvaluation:
    @pytest.mark.parametrize(
        "gate,inputs,expected",
        [
            ("AND", [True, True], True),
            ("AND", [True, False], False),
            ("OR", [False, False], False),
            ("OR", [False, True], True),
            ("NAND", [True, True], False),
            ("NOR", [False, False], True),
            ("XOR", [True, False], True),
            ("XOR", [True, True], False),
            ("XNOR", [True, True], True),
            ("XNOR", [True, False], False),
            ("NOT", [True], False),
            ("NOT", [False], True),
            ("BUF", [True], True),
        ],
    )
    def test_truth_tables(self, gate, inputs, expected):
        assert evaluate_gate(gate, inputs) is expected

    def test_multi_input_and(self):
        assert evaluate_gate("AND", [True, True, True])
        assert not evaluate_gate("AND", [True, True, False])

    def test_three_input_xor_parity(self):
        assert evaluate_gate("XOR", [True, True, True]) is True
        assert evaluate_gate("XOR", [True, True, False]) is False

    def test_input_gate(self):
        assert evaluate_gate("INPUT", []) is False
        assert evaluate_gate("INPUT", [True]) is True

    def test_dff_transparent_here(self):
        assert evaluate_gate("DFF", [True]) is True

    def test_unknown_gate(self):
        with pytest.raises(ValueError, match="unknown"):
            evaluate_gate("MUX", [True])


class TestCostsAndDelays:
    def test_all_types_have_both(self):
        for gate_type in GATE_TYPES:
            assert gate_cost(gate_type) > 0 or gate_type == "INPUT"
            assert gate_delay(gate_type) >= 0

    def test_xor_costs_more_than_not(self):
        assert gate_cost("XOR") > gate_cost("NOT")

    def test_unknown_cost(self):
        with pytest.raises(ValueError):
            gate_cost("MUX")
        with pytest.raises(ValueError):
            gate_delay("MUX")
