"""Unit tests for the event kernel (:mod:`repro.desim.events`,
:mod:`repro.desim.event_queue`)."""

import pytest

from repro.desim.event_queue import EventQueue
from repro.desim.events import Event


class TestEvent:
    def test_fields(self):
        e = Event(3.0, 7, True)
        assert e.time == 3.0
        assert e.source == 7
        assert e.value is True

    def test_frozen(self):
        e = Event(1.0, 0, False)
        with pytest.raises(Exception):
            e.time = 2.0

    def test_repr(self):
        assert "t=3" in repr(Event(3.0, 1, True))


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(Event(5.0, 0, True))
        q.push(Event(1.0, 1, True))
        q.push(Event(3.0, 2, True))
        assert [q.pop().time for _ in range(3)] == [1.0, 3.0, 5.0]

    def test_stable_on_ties(self):
        q = EventQueue()
        for source in range(5):
            q.push(Event(2.0, source, True))
        assert [q.pop().source for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(Event(4.0, 0, True))
        assert q.peek_time() == 4.0
        assert len(q) == 1  # peek does not pop

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_counters(self):
        q = EventQueue()
        q.push(Event(1.0, 0, True))
        q.push(Event(2.0, 0, False))
        q.pop()
        assert q.pushed == 2
        assert q.popped == 1

    def test_bool(self):
        q = EventQueue()
        assert not q
        q.push(Event(1.0, 0, True))
        assert q
