"""Unit tests for :mod:`repro.desim.waveform`."""

import pytest

from repro.desim.netlists import ring_counter, shift_register
from repro.desim.waveform import WaveformRecorder


class TestRecorder:
    def test_records_changes(self):
        circuit = ring_counter(4)
        recorder = WaveformRecorder(circuit)
        result = recorder.run(300.0)
        assert result.events_processed > 0
        assert recorder.changes  # something toggled
        for series in recorder.changes.values():
            times = [t for t, _v in series]
            assert times == sorted(times)
            # Consecutive committed values alternate.
            values = [v for _t, v in series]
            assert all(a != b for a, b in zip(values, values[1:]))

    def test_watch_subset(self):
        circuit = ring_counter(6)
        recorder = WaveformRecorder(circuit, watch=[0, 1])
        recorder.run(300.0)
        assert set(recorder.changes) <= {0, 1}

    def test_watch_validation(self):
        circuit = ring_counter(4)
        with pytest.raises(ValueError, match="unknown gate"):
            WaveformRecorder(circuit, watch=[99])

    def test_changes_match_final_values(self):
        circuit = shift_register(6)
        stim = [(float(t), 0, (t // 20) % 2 == 0) for t in range(0, 200, 20)]
        recorder = WaveformRecorder(circuit)
        result = recorder.run(300.0, stimuli=stim)
        for gate, series in recorder.changes.items():
            assert series[-1][1] == result.final_values[gate]


class TestVcd:
    def test_structure(self):
        circuit = ring_counter(4)
        recorder = WaveformRecorder(circuit, watch=[0, 1, 2])
        recorder.run(200.0)
        vcd = recorder.to_vcd()
        assert vcd.startswith("$date")
        assert "$enddefinitions $end" in vcd
        assert vcd.count("$var wire 1 ") == 3
        assert "$dumpvars" in vcd
        # Timestamps present and increasing.
        stamps = [
            int(line[1:])
            for line in vcd.splitlines()
            if line.startswith("#")
        ]
        assert stamps == sorted(stamps)

    def test_names_in_header(self):
        circuit = ring_counter(4)
        recorder = WaveformRecorder(circuit, watch=[0])
        recorder.run(100.0)
        assert "ff0" in recorder.to_vcd()

    def test_vcd_ids_unique(self):
        ids = [WaveformRecorder._vcd_id(i) for i in range(200)]
        assert len(set(ids)) == 200
        assert all(all(33 <= ord(c) <= 126 for c in i) for i in ids)

    def test_fractional_times_scaled(self):
        circuit = ring_counter(4)
        recorder = WaveformRecorder(circuit)
        recorder.run(50.0)
        vcd = recorder.to_vcd()
        assert f"#{50 * 1000}" in vcd  # end marker in milli-units


class TestAsciiWaves:
    def test_renders_rows(self):
        circuit = ring_counter(5)
        recorder = WaveformRecorder(circuit, watch=[0, 1, 2])
        recorder.run(400.0)
        text = recorder.ascii_waves(width=40)
        rows = text.splitlines()
        assert len(rows) == 3
        assert all(("#" in row or "_" in row) for row in rows)

    def test_requires_run(self):
        circuit = ring_counter(4)
        recorder = WaveformRecorder(circuit)
        with pytest.raises(ValueError, match="record a run"):
            recorder.ascii_waves()

    def test_oscillation_visible(self):
        circuit = ring_counter(4)
        recorder = WaveformRecorder(circuit, watch=[0])
        recorder.run(800.0)
        row = recorder.ascii_waves(width=80)
        # A ring counter stage spends time both high and low.
        assert "#" in row and "_" in row
