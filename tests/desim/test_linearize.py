"""Unit tests for :mod:`repro.desim.linearize`."""

import pytest

from repro.desim.linearize import circuit_supergraph
from repro.desim.netlists import (
    adder_pipeline,
    inverter_ring,
    ring_counter,
    shift_register,
)
from repro.desim.simulator import LogicSimulator


class TestCircuitSupergraph:
    def test_path_circuit_passthrough(self):
        c = shift_register(6)
        sg = circuit_supergraph(c)
        assert sg.exact
        assert sg.chain.num_tasks == c.num_gates
        assert all(len(g) == 1 for g in sg.groups)

    def test_ring_broken_to_chain(self):
        c = inverter_ring(7)
        sg = circuit_supergraph(c)
        assert sg.exact
        assert sg.chain.num_tasks == 7

    def test_ring_counter_is_cycle(self):
        c = ring_counter(5)
        sg = circuit_supergraph(c)
        assert sg.chain.num_tasks == c.num_gates

    def test_general_circuit_bfs_layers(self):
        c, stage_of = adder_pipeline(4, bits=3)
        sg = circuit_supergraph(c)
        assert sg.exact  # BFS layering is always exact
        assert sg.chain.num_tasks < c.num_gates  # grouped
        assert sum(len(g) for g in sg.groups) == c.num_gates

    def test_activity_weighting_changes_chain(self):
        c, _ = adder_pipeline(3, bits=2)
        stim = [(float(t), g, (t + g) % 3 == 0)
                for t in range(0, 100, 20) for g in c.primary_inputs()]
        profile = LogicSimulator(c).run(150.0, stimuli=stim)
        static = circuit_supergraph(c)
        dynamic = circuit_supergraph(c, activity=profile.activity())
        assert static.chain.num_tasks == dynamic.chain.num_tasks
        assert static.chain.alpha != dynamic.chain.alpha

    def test_assignment_covers_all_gates(self):
        c, _ = adder_pipeline(3, bits=2)
        sg = circuit_supergraph(c)
        assignment = sg.assignment_from_cut([0])
        assert len(assignment) == c.num_gates
        assert set(assignment) == {0, 1}
