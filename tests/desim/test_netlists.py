"""Unit tests for the circuit generators (:mod:`repro.desim.netlists`)."""

import random

import pytest

from repro.desim.netlists import (
    adder_pipeline,
    inverter_ring,
    random_glue_circuit,
    ring_counter,
    shift_register,
)


class TestRingCounter:
    def test_structure(self):
        c = ring_counter(6)
        assert c.num_gates == 7  # 6 DFFs + twist inverter
        assert len(c.flip_flops()) == 6

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            ring_counter(1)

    def test_is_circular(self):
        c = ring_counter(5)
        graph = c.to_task_graph()
        assert graph.is_connected()
        assert graph.num_edges == graph.num_vertices  # one cycle


class TestInverterRing:
    def test_structure(self):
        c = inverter_ring(5)
        assert c.num_gates == 5
        graph = c.to_task_graph()
        assert all(graph.degree(v) == 2 for v in range(5))

    def test_rejects_even(self):
        with pytest.raises(ValueError):
            inverter_ring(4)
        with pytest.raises(ValueError):
            inverter_ring(1)


class TestShiftRegister:
    def test_structure(self):
        c = shift_register(8)
        assert c.num_gates == 9
        assert len(c.flip_flops()) == 8
        assert c.to_task_graph().is_path()

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            shift_register(0)


class TestAdderPipeline:
    def test_structure(self):
        c, stage_of = adder_pipeline(3, bits=2)
        assert len(stage_of) == c.num_gates
        assert max(stage_of) == 3
        assert c.primary_inputs()  # stage 0
        assert c.flip_flops()

    def test_stages_monotone(self):
        _c, stage_of = adder_pipeline(4, bits=3)
        assert stage_of == sorted(stage_of)

    def test_connected(self):
        c, _ = adder_pipeline(3, bits=4)
        assert c.to_task_graph().is_connected()

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            adder_pipeline(0)
        with pytest.raises(ValueError):
            adder_pipeline(2, bits=0)


class TestRandomGlue:
    def test_size(self):
        c = random_glue_circuit(60, random.Random(1))
        assert c.num_gates == 60

    def test_deterministic(self):
        a = random_glue_circuit(40, random.Random(2))
        b = random_glue_circuit(40, random.Random(2))
        assert [g.gate_type for g in a.gates] == [g.gate_type for g in b.gates]
        assert [g.inputs for g in a.gates] == [g.inputs for g in b.gates]

    def test_rejects_too_small(self):
        with pytest.raises(ValueError):
            random_glue_circuit(3)

    def test_locality_zero_allows_long_wires(self):
        c = random_glue_circuit(80, random.Random(3), locality=0.0)
        spans = [
            g.ident - src for g in c.gates for src in g.inputs
        ]
        assert max(spans) > 8
