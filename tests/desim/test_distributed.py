"""Unit tests for :mod:`repro.desim.distributed`."""

import pytest

from repro.desim.distributed import simulate_partitioned
from repro.desim.netlists import ring_counter, shift_register
from repro.desim.simulator import LogicSimulator
from repro.machine.interconnect import SharedBus
from repro.machine.machine import SharedMemoryMachine


class TestPartitionedRun:
    def test_single_processor_no_cross(self):
        c = ring_counter(6)
        run = simulate_partitioned(c, [0] * c.num_gates, 300.0)
        assert run.cross_messages == 0
        assert run.local_messages > 0
        assert run.num_processors == 1

    def test_message_conservation(self):
        c = ring_counter(6)
        assignment = [g % 2 for g in range(c.num_gates)]
        run = simulate_partitioned(c, assignment, 300.0)
        reference = LogicSimulator(c, clock_period=10.0).run(300.0)
        assert run.local_messages + run.cross_messages == reference.total_messages

    def test_alternating_worst_case(self):
        c = shift_register(8)
        stim = [(float(t), 0, (t // 20) % 2 == 0) for t in range(0, 200, 20)]
        together = simulate_partitioned(c, [0] * c.num_gates, 250.0, stimuli=stim)
        alternating = simulate_partitioned(
            c, [g % 2 for g in range(c.num_gates)], 250.0, stimuli=stim
        )
        # Alternating placement turns every wire into a cross wire.
        assert together.cross_messages == 0
        assert alternating.local_messages == 0
        assert alternating.cross_messages > 0

    def test_contiguous_beats_alternating(self):
        c = shift_register(8)
        stim = [(float(t), 0, (t // 20) % 2 == 0) for t in range(0, 200, 20)]
        half = c.num_gates // 2
        contiguous = simulate_partitioned(
            c,
            [0 if g < half else 1 for g in range(c.num_gates)],
            250.0,
            stimuli=stim,
        )
        alternating = simulate_partitioned(
            c, [g % 2 for g in range(c.num_gates)], 250.0, stimuli=stim
        )
        assert contiguous.cross_messages < alternating.cross_messages

    def test_loads_positive(self):
        c = ring_counter(6)
        run = simulate_partitioned(c, [g % 3 for g in range(c.num_gates)], 300.0)
        assert len(run.processor_loads) == 3
        assert all(load >= 0 for load in run.processor_loads)
        assert run.max_load > 0

    def test_pair_messages_sum(self):
        c = ring_counter(6)
        run = simulate_partitioned(c, [g % 3 for g in range(c.num_gates)], 300.0)
        assert sum(run.pair_messages.values()) == run.cross_messages

    def test_cross_fraction(self):
        c = ring_counter(6)
        run = simulate_partitioned(c, [0] * c.num_gates, 300.0)
        assert run.cross_fraction == 0.0

    def test_estimated_parallel_time(self):
        c = ring_counter(6)
        run = simulate_partitioned(c, [g % 2 for g in range(c.num_gates)], 300.0)
        machine = SharedMemoryMachine(2, interconnect=SharedBus(bandwidth=10))
        estimate = run.estimated_parallel_time(machine)
        assert estimate > 0
        # More bandwidth -> never slower.
        faster = SharedMemoryMachine(2, interconnect=SharedBus(bandwidth=100))
        assert run.estimated_parallel_time(faster) <= estimate

    def test_rejects_short_assignment(self):
        c = ring_counter(4)
        with pytest.raises(ValueError):
            simulate_partitioned(c, [0], 100.0)
