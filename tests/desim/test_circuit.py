"""Unit tests for :mod:`repro.desim.circuit`."""

import pytest

from repro.desim.circuit import Circuit


@pytest.fixture
def tiny_circuit():
    """in0, in1 -> AND -> NOT."""
    c = Circuit()
    c.add_gate("INPUT", name="in0")
    c.add_gate("INPUT", name="in1")
    c.add_gate("AND", [0, 1])
    c.add_gate("NOT", [2])
    return c


class TestConstruction:
    def test_add_gates(self, tiny_circuit):
        assert tiny_circuit.num_gates == 4
        assert tiny_circuit.gates[2].inputs == [0, 1]
        assert tiny_circuit.fanout[0] == [2]
        assert tiny_circuit.fanout[2] == [3]

    def test_rejects_unknown_source(self):
        c = Circuit()
        with pytest.raises(ValueError, match="unknown gate"):
            c.add_gate("NOT", [5])

    def test_rejects_unknown_type(self):
        c = Circuit()
        with pytest.raises(ValueError, match="unknown gate type"):
            c.add_gate("MUX")

    def test_connect_input_allows_cycles(self):
        c = Circuit()
        a = c.add_gate("NOT")
        b = c.add_gate("NOT", [a])
        c.connect_input(a, b)  # feedback
        assert c.gates[a].inputs == [b]
        assert b in c.fanout[a] or a in c.fanout[b]

    def test_connect_input_validates(self, tiny_circuit):
        with pytest.raises(ValueError):
            tiny_circuit.connect_input(99, 0)
        with pytest.raises(ValueError):
            tiny_circuit.connect_input(0, 99)

    def test_default_names(self, tiny_circuit):
        assert tiny_circuit.gates[2].name == "g2"


class TestQueries:
    def test_primary_inputs(self, tiny_circuit):
        assert tiny_circuit.primary_inputs() == [0, 1]

    def test_flip_flops(self):
        c = Circuit()
        c.add_gate("INPUT")
        c.add_gate("DFF", [0])
        assert c.flip_flops() == [1]

    def test_wire_pairs(self, tiny_circuit):
        pairs = tiny_circuit.wire_pairs()
        assert pairs == {(0, 2): 1, (1, 2): 1, (2, 3): 1}

    def test_wire_pairs_multiplicity(self):
        c = Circuit()
        a = c.add_gate("INPUT")
        b = c.add_gate("XOR", [a, a])
        assert c.wire_pairs() == {(a, b): 2}


class TestTaskGraphExport:
    def test_static_weights(self, tiny_circuit):
        graph = tiny_circuit.to_task_graph()
        assert graph.num_vertices == 4
        assert graph.vertex_weight(2) == 2.0  # AND cost
        assert graph.edge_weight(0, 2) == 1.0

    def test_activity_scaling(self, tiny_circuit):
        graph = tiny_circuit.to_task_graph(activity=[2, 1, 4, 1])
        assert graph.vertex_weight(2) == 8.0  # cost 2 * activity 4
        assert graph.edge_weight(2, 3) == 4.0  # driver's activity

    def test_activity_length_checked(self, tiny_circuit):
        with pytest.raises(ValueError):
            tiny_circuit.to_task_graph(activity=[1.0])

    def test_self_loop_skipped(self):
        c = Circuit()
        a = c.add_gate("NOT")
        c.connect_input(a, a)  # pathological self-feedback
        graph = c.to_task_graph()
        assert graph.num_edges == 0

    def test_repr(self, tiny_circuit):
        assert "4 gates" in repr(tiny_circuit)
