"""Unit tests for the pipelined executor (:mod:`repro.machine.executor`)."""

import pytest

from repro.graphs.chain import Chain
from repro.machine.executor import simulate_pipeline
from repro.machine.interconnect import Crossbar, SharedBus
from repro.machine.machine import SharedMemoryMachine


@pytest.fixture
def machine():
    return SharedMemoryMachine(8, interconnect=SharedBus(bandwidth=1e9))


class TestSingleStage:
    def test_sequential_items(self, small_chain, machine):
        ex = simulate_pipeline(small_chain, [], machine, num_items=4)
        assert ex.num_stages == 1
        # One stage of weight 20 per item, no communication.
        assert ex.makespan == pytest.approx(80.0)
        assert ex.first_item_latency == pytest.approx(20.0)
        assert ex.total_traffic == 0.0

    def test_throughput(self, small_chain, machine):
        ex = simulate_pipeline(small_chain, [], machine, num_items=10)
        assert ex.throughput == pytest.approx(1 / 20.0)


class TestPipelining:
    def test_two_stage_overlap(self, machine):
        chain = Chain([5, 5], [1])
        ex = simulate_pipeline(chain, [0], machine, num_items=3)
        # Stages of 5 each, negligible transfer: makespan = 5 (fill) +
        # 3 * 5 = 20.
        assert ex.makespan == pytest.approx(20.0, rel=1e-6)
        assert ex.first_item_latency == pytest.approx(10.0, rel=1e-6)

    def test_pipeline_beats_sequential(self, small_chain, machine):
        seq = simulate_pipeline(small_chain, [], machine, num_items=20)
        par = simulate_pipeline(small_chain, [1, 3], machine, num_items=20)
        assert par.makespan < seq.makespan

    def test_bottleneck_stage_dominates(self, machine):
        chain = Chain([1, 8, 1], [0.001, 0.001])
        ex = simulate_pipeline(chain, [0, 1], machine, num_items=50)
        # Steady-state period ~ 8 (the heavy middle stage).
        assert ex.makespan == pytest.approx(50 * 8, rel=0.05)
        assert ex.bottleneck_stage == 1

    def test_utilization_of_bottleneck(self, machine):
        chain = Chain([1, 8, 1], [0.001, 0.001])
        ex = simulate_pipeline(chain, [0, 1], machine, num_items=50)
        assert ex.utilization[1] > 0.95
        assert ex.utilization[0] < 0.2


class TestCommunication:
    def test_slow_bus_limits_throughput(self):
        chain = Chain([1, 1], [10])
        fast = SharedMemoryMachine(4, interconnect=SharedBus(bandwidth=100))
        slow = SharedMemoryMachine(4, interconnect=SharedBus(bandwidth=1))
        ex_fast = simulate_pipeline(chain, [0], fast, num_items=20)
        ex_slow = simulate_pipeline(chain, [0], slow, num_items=20)
        assert ex_slow.makespan > ex_fast.makespan
        # Slow bus: each item needs a 10-unit transfer on a serialized
        # bus -> period ~ 10.
        assert ex_slow.makespan >= 20 * 10 * 0.9

    def test_total_traffic(self, machine):
        chain = Chain([1, 1, 1], [5, 7])
        ex = simulate_pipeline(chain, [0, 1], machine, num_items=10)
        assert ex.total_traffic == 10 * 12
        assert ex.transfer_volumes == [5, 7]

    def test_crossbar_beats_bus_under_contention(self):
        # Four stages exchanging simultaneously on a slow network.
        chain = Chain([1, 1, 1, 1], [8, 8, 8])
        bus = SharedMemoryMachine(4, interconnect=SharedBus(bandwidth=1))
        xbar = SharedMemoryMachine(4, interconnect=Crossbar(bandwidth=1))
        ex_bus = simulate_pipeline(chain, [0, 1, 2], bus, num_items=30)
        ex_xbar = simulate_pipeline(chain, [0, 1, 2], xbar, num_items=30)
        assert ex_xbar.makespan < ex_bus.makespan


class TestValidation:
    def test_too_many_stages(self, small_chain):
        tiny = SharedMemoryMachine(2)
        with pytest.raises(ValueError, match="exceed"):
            simulate_pipeline(small_chain, [0, 1, 2], tiny, num_items=1)

    def test_zero_items(self, small_chain, machine):
        with pytest.raises(ValueError, match="at least one"):
            simulate_pipeline(small_chain, [], machine, num_items=0)

    def test_speed_scales_compute(self, small_chain):
        fast = SharedMemoryMachine(1, speed=2.0)
        ex = simulate_pipeline(small_chain, [], fast, num_items=1)
        assert ex.makespan == pytest.approx(10.0)
