"""Unit tests for trace recording and Gantt rendering."""

import pytest

from repro.graphs.chain import Chain
from repro.machine.executor import simulate_pipeline
from repro.machine.gantt import render_gantt, utilization_bars
from repro.machine.interconnect import SharedBus
from repro.machine.machine import SharedMemoryMachine


@pytest.fixture
def machine():
    return SharedMemoryMachine(8, interconnect=SharedBus(bandwidth=2.0))


@pytest.fixture
def traced(machine):
    chain = Chain([3, 5, 2], [4, 1])
    return simulate_pipeline(
        chain, [0, 1], machine, num_items=4, record_trace=True
    )


class TestTraceRecording:
    def test_no_trace_by_default(self, machine):
        chain = Chain([3, 5], [4])
        ex = simulate_pipeline(chain, [0], machine, 3)
        assert ex.trace is None

    def test_compute_spans_complete(self, traced):
        computes = [s for s in traced.trace if s.kind == "compute"]
        # 3 stages x 4 items.
        assert len(computes) == 12
        by_pair = {(s.stage, s.item) for s in computes}
        assert len(by_pair) == 12

    def test_span_durations(self, traced):
        for span in traced.trace:
            assert span.end > span.start
            if span.kind == "compute":
                assert span.end - span.start == pytest.approx(
                    traced.stage_compute_times[span.stage]
                )

    def test_transfers_recorded(self, traced):
        transfers = [s for s in traced.trace if s.kind == "transfer"]
        # 2 boundaries x 4 items.
        assert len(transfers) == 8

    def test_spans_within_makespan(self, traced):
        assert all(s.end <= traced.makespan + 1e-9 for s in traced.trace)

    def test_per_stage_order(self, traced):
        for stage in range(traced.num_stages):
            spans = [
                s for s in traced.trace
                if s.kind == "compute" and s.stage == stage
            ]
            starts = [s.start for s in spans]
            assert starts == sorted(starts)

    def test_trace_unaffected_by_recording(self, machine):
        chain = Chain([3, 5, 2], [4, 1])
        plain = simulate_pipeline(chain, [0, 1], machine, 4)
        traced = simulate_pipeline(
            chain, [0, 1], machine, 4, record_trace=True
        )
        assert plain.makespan == traced.makespan
        assert plain.stage_busy_time == traced.stage_busy_time


class TestRendering:
    def test_gantt_shape(self, traced):
        text = render_gantt(traced, width=60)
        lines = text.splitlines()
        assert len(lines) == traced.num_stages + 1
        assert lines[0].startswith("stage 0")
        assert "t=0" in lines[-1]

    def test_gantt_contains_marks(self, traced):
        text = render_gantt(traced, width=60)
        assert any(d in text for d in "0123")
        assert ">" in text

    def test_gantt_requires_trace(self, machine):
        chain = Chain([3, 5], [4])
        ex = simulate_pipeline(chain, [0], machine, 3)
        with pytest.raises(ValueError, match="no trace"):
            render_gantt(ex)

    def test_utilization_bars(self, traced):
        text = utilization_bars(traced, width=20)
        lines = text.splitlines()
        assert len(lines) == traced.num_stages
        assert all("%" in line for line in lines)
