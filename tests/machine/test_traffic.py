"""Unit tests for :mod:`repro.machine.traffic`."""

import pytest

from repro.machine.traffic import network_demand


class TestNetworkDemand:
    def test_no_cut(self, small_chain):
        report = network_demand(small_chain, [])
        assert report.total_demand == 0.0
        assert report.max_link_demand == 0.0
        assert report.processor_demands == (0.0,)

    def test_fixture_cut(self, small_chain):
        report = network_demand(small_chain, [1, 3])
        assert report.boundary_volumes == (1, 2)
        assert report.total_demand == 3
        assert report.max_link_demand == 2
        # Stage 0 sends 1; stage 1 receives 1 and sends 2; stage 2
        # receives 2.
        assert report.processor_demands == (1, 3, 2)
        assert report.max_processor_demand == 3

    def test_saturation(self, small_chain):
        report = network_demand(small_chain, [1, 3])
        assert report.saturation(bandwidth=6.0) == pytest.approx(0.5)

    def test_duplicate_indices_collapsed(self, small_chain):
        a = network_demand(small_chain, [1, 1, 3])
        b = network_demand(small_chain, [1, 3])
        assert a == b

    def test_matches_bandwidth_objective(self, small_chain):
        from repro.core import bandwidth_min

        result = bandwidth_min(small_chain, 9)
        report = network_demand(small_chain, result.cut_indices)
        assert report.total_demand == pytest.approx(result.weight)
