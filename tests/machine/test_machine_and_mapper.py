"""Unit tests for :mod:`repro.machine.machine` / :mod:`repro.machine.mapper`
and :mod:`repro.machine.processor`."""

import pytest

from repro.machine.interconnect import Crossbar, SharedBus
from repro.machine.machine import SharedMemoryMachine
from repro.machine.mapper import map_partition
from repro.machine.processor import Processor


class TestProcessor:
    def test_compute_time(self):
        assert Processor(0, speed=2.0).compute_time(10.0) == 5.0

    def test_rejects_bad_speed(self):
        with pytest.raises(ValueError):
            Processor(0, speed=0.0)

    def test_frozen(self):
        with pytest.raises(Exception):
            Processor(0).speed = 2.0


class TestMachine:
    def test_defaults(self):
        machine = SharedMemoryMachine(4)
        assert machine.num_processors == 4
        assert machine.speed == 1.0
        assert isinstance(machine.interconnect, SharedBus)
        assert machine.is_homogeneous()

    def test_custom_interconnect(self):
        machine = SharedMemoryMachine(2, speed=3.0, interconnect=Crossbar())
        assert machine.speed == 3.0
        assert isinstance(machine.interconnect, Crossbar)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            SharedMemoryMachine(0)


class TestMapper:
    def test_identity_mapping(self):
        machine = SharedMemoryMachine(4)
        mapping = map_partition([5.0, 3.0, 2.0], machine)
        assert mapping.processor_of == [0, 1, 2]
        assert not mapping.folded
        assert mapping.loads == [5.0, 3.0, 2.0, 0.0]
        assert mapping.max_load == 5.0

    def test_exact_fit(self):
        machine = SharedMemoryMachine(2)
        mapping = map_partition([1.0, 2.0], machine)
        assert mapping.processor_of == [0, 1]

    def test_too_many_components_raises(self):
        machine = SharedMemoryMachine(2)
        with pytest.raises(ValueError, match="exceed"):
            map_partition([1.0, 2.0, 3.0], machine)

    def test_folding_balances(self):
        machine = SharedMemoryMachine(2)
        mapping = map_partition([5.0, 4.0, 3.0, 2.0], machine, allow_folding=True)
        assert mapping.folded
        assert sorted(mapping.loads) == [7.0, 7.0]  # LPT: 5+2 / 4+3

    def test_components_on(self):
        machine = SharedMemoryMachine(2)
        mapping = map_partition([5.0, 4.0, 3.0], machine, allow_folding=True)
        all_components = sorted(
            c for p in range(2) for c in mapping.components_on(p)
        )
        assert all_components == [0, 1, 2]

    def test_rejects_empty_components(self):
        with pytest.raises(ValueError, match="no components"):
            map_partition([], SharedMemoryMachine(2))
