"""Unit tests for :mod:`repro.machine.interconnect`."""

import pytest

from repro.machine.interconnect import (
    Crossbar,
    Interconnect,
    MultistageNetwork,
    SharedBus,
)


class TestBase:
    def test_transfer_time(self):
        net = SharedBus(bandwidth=2.0, latency=1.0)
        assert net.transfer_time(4.0) == 3.0
        assert net.transfer_time(0.0) == 0.0

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            SharedBus(bandwidth=0)
        with pytest.raises(ValueError):
            SharedBus(latency=-1)

    def test_base_round_time_abstract(self):
        with pytest.raises(NotImplementedError):
            Interconnect().round_time({})


class TestSharedBus:
    def test_serializes_everything(self):
        bus = SharedBus(bandwidth=1.0)
        transfers = {(0, 1): 3.0, (2, 3): 5.0}
        assert bus.round_time(transfers) == 8.0

    def test_latency_per_transfer(self):
        bus = SharedBus(bandwidth=1.0, latency=2.0)
        assert bus.round_time({(0, 1): 1.0, (2, 3): 1.0}) == 6.0

    def test_empty(self):
        assert SharedBus().round_time({}) == 0.0
        assert SharedBus().round_time({(0, 1): 0.0}) == 0.0


class TestCrossbar:
    def test_disjoint_transfers_parallel(self):
        xbar = Crossbar(bandwidth=1.0)
        transfers = {(0, 1): 3.0, (2, 3): 5.0}
        assert xbar.round_time(transfers) == 5.0

    def test_shared_port_serializes(self):
        xbar = Crossbar(bandwidth=1.0)
        transfers = {(0, 1): 3.0, (1, 2): 5.0}
        assert xbar.round_time(transfers) == 8.0  # port 1 carries both

    def test_empty(self):
        assert Crossbar().round_time({}) == 0.0


class TestMultistage:
    def test_stage_count(self):
        assert MultistageNetwork(ports=8).stages == 3
        assert MultistageNetwork(ports=9).stages == 4
        assert MultistageNetwork(ports=2).stages == 1

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            MultistageNetwork(ports=1)

    def test_single_transfer_no_contention(self):
        net = MultistageNetwork(ports=8, bandwidth=2.0)
        assert net.round_time({(0, 1): 4.0}) == pytest.approx(2.0)

    def test_contention_slows_down(self):
        net = MultistageNetwork(ports=4, bandwidth=1.0)
        single = net.round_time({(0, 1): 4.0})
        loaded = net.round_time({(0, 1): 4.0, (2, 3): 4.0})
        assert loaded > single

    def test_between_bus_and_crossbar(self):
        transfers = {(0, 1): 4.0, (2, 3): 4.0, (4, 5): 4.0}
        bus = SharedBus(bandwidth=1.0).round_time(transfers)
        xbar = Crossbar(bandwidth=1.0).round_time(transfers)
        multi = MultistageNetwork(ports=8, bandwidth=1.0).round_time(transfers)
        assert xbar <= multi <= bus

    def test_transfer_time_includes_stage_latency(self):
        net = MultistageNetwork(ports=8, bandwidth=1.0, latency=0.5)
        assert net.transfer_time(2.0) == pytest.approx(3.5)  # 3 stages
