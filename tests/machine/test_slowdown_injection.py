"""Slowdown-injection tests for the pipelined executor."""

import pytest

from repro.graphs.chain import Chain
from repro.machine.executor import simulate_pipeline
from repro.machine.interconnect import SharedBus
from repro.machine.machine import SharedMemoryMachine


@pytest.fixture
def machine():
    return SharedMemoryMachine(8, interconnect=SharedBus(bandwidth=1e9))


@pytest.fixture
def balanced_chain():
    return Chain([4, 4, 4], [0.001, 0.001])


class TestSpeedFactors:
    def test_default_is_uniform(self, balanced_chain, machine):
        a = simulate_pipeline(balanced_chain, [0, 1], machine, 20)
        b = simulate_pipeline(
            balanced_chain, [0, 1], machine, 20,
            stage_speed_factors=[1.0, 1.0, 1.0],
        )
        assert a.makespan == b.makespan

    def test_slow_stage_becomes_bottleneck(self, balanced_chain, machine):
        ex = simulate_pipeline(
            balanced_chain, [0, 1], machine, 50,
            stage_speed_factors=[1.0, 0.5, 1.0],
        )
        assert ex.bottleneck_stage == 1
        # Period ~ 8 (stage 1 at half speed) instead of 4.
        assert ex.makespan >= 50 * 8 * 0.95

    def test_speedup_factor_helps(self, balanced_chain, machine):
        base = simulate_pipeline(balanced_chain, [0, 1], machine, 30)
        boosted = simulate_pipeline(
            balanced_chain, [0, 1], machine, 30,
            stage_speed_factors=[2.0, 2.0, 2.0],
        )
        assert boosted.makespan == pytest.approx(base.makespan / 2)

    def test_slowdown_monotone(self, balanced_chain, machine):
        makespans = [
            simulate_pipeline(
                balanced_chain, [0, 1], machine, 30,
                stage_speed_factors=[1.0, f, 1.0],
            ).makespan
            for f in (1.0, 0.8, 0.5, 0.25)
        ]
        assert makespans == sorted(makespans)

    def test_validation(self, balanced_chain, machine):
        with pytest.raises(ValueError, match="speed factors"):
            simulate_pipeline(
                balanced_chain, [0, 1], machine, 5,
                stage_speed_factors=[1.0],
            )
        with pytest.raises(ValueError, match="positive"):
            simulate_pipeline(
                balanced_chain, [0, 1], machine, 5,
                stage_speed_factors=[1.0, 0.0, 1.0],
            )

    def test_folding_flag_runs(self, machine):
        # More stages than processors, explicitly allowed (each stage
        # modelled as its own logical processor).
        chain = Chain([1.0] * 12, [0.1] * 11)
        tiny = SharedMemoryMachine(2, interconnect=SharedBus(bandwidth=1e9))
        ex = simulate_pipeline(
            chain, list(range(11)), tiny, 5, allow_folding=True
        )
        assert ex.num_stages == 12
