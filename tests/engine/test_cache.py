"""Unit tests for the prime-structure cache and its monotone warm-start."""

import pytest

from repro.core.bandwidth import bandwidth_min
from repro.core.feasibility import InfeasibleBoundError
from repro.engine.cache import PrimeStructureCache
from repro.graphs.chain import Chain
from repro.graphs.generators import random_chain


class TestFingerprint:
    def test_equal_chains_share_fingerprint(self):
        a = Chain([1.0, 2.0, 3.0], [4.0, 5.0])
        b = Chain([1.0, 2.0, 3.0], [4.0, 5.0])
        assert a is not b
        assert a.fingerprint() == b.fingerprint()

    def test_different_weights_differ(self):
        a = Chain([1.0, 2.0], [4.0])
        assert a.fingerprint() != Chain([1.0, 2.5], [4.0]).fingerprint()
        assert a.fingerprint() != Chain([1.0, 2.0], [4.5]).fingerprint()

    def test_alpha_beta_boundary_is_unambiguous(self):
        # Same multiset of floats, different alpha/beta split.
        a = Chain([1.0, 2.0, 3.0], [4.0, 5.0])
        b = Chain([1.0, 2.0, 3.0, 4.0], [5.0, 5.0, 5.0])
        assert a.fingerprint() != b.fingerprint()

    def test_cached(self):
        chain = random_chain(100, rng=0)
        assert chain.fingerprint() is chain.fingerprint()


@pytest.fixture(params=["python", "numpy"])
def cache(request):
    if request.param == "numpy":
        pytest.importorskip("numpy")
    return PrimeStructureCache(backend=request.param)


class TestCacheServing:
    def test_exact_hit(self, cache):
        chain = random_chain(100, rng=1)
        bound = 2.0 * chain.max_vertex_weight()
        first = cache.solve(chain, bound)
        second = cache.solve(chain, bound)
        assert second is first
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_equal_chain_different_object_hits(self, cache):
        chain = random_chain(100, rng=2)
        clone = Chain(list(chain.alpha), list(chain.beta))
        bound = 2.0 * chain.max_vertex_weight()
        cache.solve(chain, bound)
        cache.solve(clone, bound)
        assert cache.stats.hits == 1

    def test_results_match_reference(self, cache):
        chain = random_chain(150, rng=3)
        wmax = chain.max_vertex_weight()
        for ratio in (1.0, 1.4, 1.4, 2.0, 2.05, 6.0, 50.0):
            bound = ratio * wmax
            got = cache.solve(chain, bound)
            ref = bandwidth_min(chain, bound)
            assert got.cut_indices == ref.cut_indices
            assert got.weight == ref.weight

    def test_monotone_interval_hit(self, cache):
        # All-equal weights: primes only change when the bound crosses a
        # multiple of the task weight, so nearby bounds share structures.
        chain = Chain([2.0] * 50, [1.0] * 49)
        base = cache.solve(chain, 6.0)  # windows of weight 8 are prime
        assert cache.stats.misses == 1
        inside = cache.solve(chain, 7.0)  # < min prime weight (8.0)
        assert cache.stats.interval_hits == 1
        assert inside.cut_indices == base.cut_indices
        assert inside.cut_indices == bandwidth_min(chain, 7.0).cut_indices
        crossed = cache.solve(chain, 8.0)  # structure must change
        assert cache.stats.misses == 2
        assert crossed.cut_indices == bandwidth_min(chain, 8.0).cut_indices

    def test_interval_never_serves_below_computed_bound(self, cache):
        chain = Chain([2.0] * 50, [1.0] * 49)
        cache.solve(chain, 6.0)
        cache.solve(chain, 5.0)  # smaller: must recompute, never reuse up
        assert cache.stats.interval_hits == 0
        assert cache.stats.misses == 2

    def test_sorted_sweep_matches_fresh_python(self, cache):
        # Integer weights give integer prime weights, so every unit
        # interval of bounds shares one structure; probe sub-unit steps.
        chain = random_chain(120, rng=4, integer_weights=True)
        wmax = chain.max_vertex_weight()
        bounds = sorted(wmax + 0.25 * i for i in range(40))
        for bound in bounds:
            got = cache.solve(chain, bound)
            ref = bandwidth_min(chain, bound)
            assert (got.cut_indices, got.weight) == (ref.cut_indices, ref.weight)
        assert cache.stats.lookups == 40
        # Dense sorted sweeps must not recompute every probe.
        assert cache.stats.interval_hits + cache.stats.hits > 0

    def test_infeasible_bound_still_raises(self, cache):
        chain = random_chain(20, rng=5)
        with pytest.raises(InfeasibleBoundError):
            cache.solve(chain, 0.5 * chain.max_vertex_weight())

    def test_structure_api(self, cache):
        chain = random_chain(60, rng=6)
        bound = 3.0 * chain.max_vertex_weight()
        structure = cache.structure(chain, bound)
        from repro.core.prime_subpaths import PrimeStructure

        ref = PrimeStructure.compute(chain, bound)
        assert structure.primes == ref.primes
        assert structure.edges == ref.edges


class TestEviction:
    def test_chain_lru(self):
        cache = PrimeStructureCache(max_chains=2, backend="python")
        chains = [random_chain(30, rng=seed) for seed in (10, 11, 12)]
        for chain in chains:
            cache.solve(chain, 2.0 * chain.max_vertex_weight())
        assert cache.stats.evictions == 1
        # chains[0] was evicted: solving it again misses.
        misses = cache.stats.misses
        cache.solve(chains[0], 2.0 * chains[0].max_vertex_weight())
        assert cache.stats.misses == misses + 1

    def test_structure_lru_per_chain(self):
        cache = PrimeStructureCache(
            max_structures_per_chain=4, backend="python"
        )
        chain = random_chain(40, rng=13)
        wmax = chain.max_vertex_weight()
        for i in range(10):
            cache.solve(chain, wmax * (1.0 + i))
        assert len(cache) <= 4
        assert cache.stats.evictions >= 6

    def test_clear(self):
        cache = PrimeStructureCache(backend="python")
        chain = random_chain(20, rng=14)
        cache.solve(chain, 2.0 * chain.max_vertex_weight())
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.lookups == 0


class TestCacheAccounting:
    """Accounting killers from mutation analysis: hit-rate arithmetic,
    the interval's closed-left boundary, exact capacity, and the traced
    outcome attribution."""

    def test_hit_rate_combines_exact_and_interval_hits(self):
        from repro.engine.cache import CacheStats

        stats = CacheStats(hits=3, interval_hits=2, misses=5)
        assert stats.hit_rate == 0.5

    def test_cached_solve_interval_is_closed_on_the_left(self):
        from repro.core.prime_subpaths import compute_prime_structure
        from repro.engine.cache import _CachedSolve

        chain = random_chain(40, rng=3)
        bound = 1.5 * chain.max_vertex_weight()
        cached = _CachedSolve(compute_prime_structure(chain, bound), bound)
        assert cached.covers(bound)  # valid_from itself is covered
        assert not cached.covers(cached.valid_until)
        assert not cached.covers(bound - 1e-9)

    def test_capacity_is_exact(self):
        # Exactly max_structures_per_chain structures must fit without
        # an eviction; the next distinct structure evicts one.
        cache = PrimeStructureCache(max_structures_per_chain=3)
        chain = random_chain(40, rng=3)
        wmax = chain.max_vertex_weight()
        # Descending bounds: none is covered by an earlier structure's
        # validity interval, so each solve is a genuine miss.
        for factor in (3.0, 2.5, 2.0):
            cache.solve(chain, factor * wmax)
        assert cache.stats.misses == 3
        assert cache.stats.evictions == 0
        cache.solve(chain, 1.5 * wmax)
        assert cache.stats.evictions == 1

    def test_span_outcome_after_interval_hit(self):
        from repro.core.prime_subpaths import compute_prime_structure
        from repro.observability import Tracer

        chain = random_chain(40, rng=3)
        bound = 1.5 * chain.max_vertex_weight()
        structure = compute_prime_structure(chain, bound)
        cache = PrimeStructureCache()
        cache.solve(chain, bound)  # miss
        cache.solve(chain, (bound + structure.min_prime_weight()) / 2.0)
        assert cache.stats.interval_hits == 1
        # An exact repeat AFTER an interval hit must still be reported
        # as a pure hit: the span deltas are per-call, not cumulative.
        tracer = Tracer()
        cache.solve(chain, bound, tracer=tracer)
        (record,) = [r for r in tracer.records() if r["name"] == "cache_solve"]
        assert record["attrs"]["outcome"] == "hit"
        assert record["counts"].get("cache_interval_hits", 0) == 0
        assert record["counts"].get("cache_hits", 0) == 1
