"""Unit tests for the batched query runner and the ``repro batch`` CLI."""

import json

import pytest

from repro.cli import main
from repro.core.bandwidth import bandwidth_min
from repro.core.inverse import chain_pareto_frontier, partition_chain_for_processors
from repro.core.pipeline import partition_chain
from repro.engine import OBJECTIVES, PartitionEngine, PartitionQuery
from repro.graphs.generators import random_chain


def make_queries(num=12, seed=100):
    queries = []
    for i in range(num):
        chain = random_chain(20 + 5 * i, rng=seed + i)
        bound = (1.5 + 0.5 * (i % 4)) * chain.max_vertex_weight()
        queries.append(
            PartitionQuery.from_chain(chain, bound, tag=f"q{i}")
        )
    return queries


class TestSolve:
    def test_bandwidth_matches_reference(self):
        engine = PartitionEngine()
        chain = random_chain(80, rng=1)
        bound = 2.0 * chain.max_vertex_weight()
        got = engine.solve(chain, bound)
        ref = bandwidth_min(chain, bound)
        assert (got.cut_indices, got.weight) == (ref.cut_indices, ref.weight)

    def test_other_objectives_delegate(self):
        engine = PartitionEngine()
        chain = random_chain(30, rng=2)
        bound = 2.0 * chain.max_vertex_weight()
        for objective in OBJECTIVES:
            got = engine.solve(chain, bound, objective)
            ref = partition_chain(chain, bound, objective)
            assert got.cut_indices == ref.cut_indices

    def test_unknown_objective(self):
        engine = PartitionEngine()
        chain = random_chain(10, rng=3)
        with pytest.raises(ValueError):
            engine.solve(chain, 100.0, "makespan")

    def test_python_backend(self):
        engine = PartitionEngine(backend="python")
        chain = random_chain(50, rng=4)
        bound = 2.0 * chain.max_vertex_weight()
        assert engine.solve(chain, bound).weight == bandwidth_min(chain, bound).weight


class TestSolveMany:
    def test_serial_results_in_order(self):
        engine = PartitionEngine()
        queries = make_queries()
        results = engine.solve_many(queries)
        assert [r.index for r in results] == list(range(len(queries)))
        assert [r.tag for r in results] == [q.tag for q in queries]
        for query, result in zip(queries, results):
            ref = bandwidth_min(query.chain(), query.bound)
            assert result.ok
            assert (result.cut_indices, result.weight) == (
                ref.cut_indices,
                ref.weight,
            )

    def test_parallel_matches_serial(self):
        engine = PartitionEngine()
        queries = make_queries()
        serial = engine.solve_many(queries, max_workers=0)
        parallel = engine.solve_many(queries, max_workers=2, chunksize=1)
        assert [r.index for r in parallel] == list(range(len(queries)))
        assert [
            (r.cut_indices, r.weight, r.num_components) for r in parallel
        ] == [(r.cut_indices, r.weight, r.num_components) for r in serial]

    def test_errors_are_per_query(self):
        engine = PartitionEngine()
        chain = random_chain(10, rng=5)
        good = PartitionQuery.from_chain(
            chain, 2.0 * chain.max_vertex_weight(), tag="good"
        )
        bad = PartitionQuery.from_chain(
            chain, 0.1 * chain.max_vertex_weight(), tag="bad"
        )
        results = engine.solve_many([good, bad, good])
        assert [r.ok for r in results] == [True, False, True]
        assert "below the maximum vertex weight" in results[1].error

    def test_jsonl_round_trip(self):
        engine = PartitionEngine()
        queries = make_queries(num=4)
        lines = [
            json.dumps(
                {
                    "alpha": list(q.alpha),
                    "beta": list(q.beta),
                    "bound": q.bound,
                    "tag": q.tag,
                }
            )
            for q in queries
        ]
        results = engine.solve_jsonl(lines)
        direct = engine.solve_many(queries)
        assert [r.to_json() for r in results] == [r.to_json() for r in direct]


class TestBatchCli:
    def test_batch_subcommand(self, tmp_path, capsys):
        chain = random_chain(15, rng=6)
        records = [
            {
                "alpha": list(chain.alpha),
                "beta": list(chain.beta),
                "bound": 2.0 * chain.max_vertex_weight(),
                "tag": "ok",
            },
            {
                "alpha": [5.0, 1.0],
                "beta": [2.0],
                "bound": 0.5,
                "tag": "infeasible",
            },
        ]
        inp = tmp_path / "queries.jsonl"
        out = tmp_path / "results.jsonl"
        inp.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        code = main(
            ["batch", "--input", str(inp), "--output", str(out)]
        )
        assert code == 1  # one failed query
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert [row["tag"] for row in rows] == ["ok", "infeasible"]
        assert rows[0]["weight"] == pytest.approx(
            bandwidth_min(chain, records[0]["bound"]).weight
        )
        assert "error" in rows[1]

    def test_batch_sweep_flag_matches_default(self, tmp_path):
        chain = random_chain(20, rng=61)
        records = [
            {
                "alpha": list(chain.alpha),
                "beta": list(chain.beta),
                "bound": (1.5 + 0.5 * i) * chain.max_vertex_weight(),
                "tag": f"s{i}",
            }
            for i in range(4)
        ]
        inp = tmp_path / "queries.jsonl"
        inp.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        plain_out = tmp_path / "plain.jsonl"
        sweep_out = tmp_path / "sweep.jsonl"
        assert main(["batch", "--input", str(inp), "--output", str(plain_out)]) == 0
        assert main(
            ["batch", "--sweep", "--input", str(inp), "--output", str(sweep_out)]
        ) == 0
        assert sweep_out.read_text() == plain_out.read_text()

    def test_batch_all_ok_exit_zero(self, tmp_path):
        inp = tmp_path / "q.jsonl"
        out = tmp_path / "r.jsonl"
        inp.write_text(
            json.dumps({"alpha": [1, 1, 1], "beta": [1, 1], "bound": 2}) + "\n"
        )
        assert main(["batch", "--input", str(inp), "--output", str(out)]) == 0


class TestPlanGrouping:
    """solve_many's fingerprint grouping through compiled plans."""

    def make_grouped_queries(self, num=12, chains=3, seed=200):
        queries = []
        pool = [random_chain(25 + 10 * c, rng=seed + c) for c in range(chains)]
        for i in range(num):
            chain = pool[i % chains]
            bound = (1.2 + 0.4 * (i % 5)) * chain.max_vertex_weight()
            queries.append(PartitionQuery.from_chain(chain, bound, tag=f"g{i}"))
        return queries

    def test_serial_plan_routing_matches_per_call(self):
        queries = self.make_grouped_queries()
        routed = PartitionEngine().solve_many(queries, max_workers=0)
        direct = PartitionEngine().solve_many(
            queries, max_workers=0, use_plans=False
        )
        assert [r.to_json() for r in routed] == [r.to_json() for r in direct]

    def test_plan_routing_shares_one_plan_per_chain(self):
        engine = PartitionEngine()
        engine.solve_many(self.make_grouped_queries(chains=3), max_workers=0)
        assert len(engine.plans) == 3
        assert engine.plans.stats.misses == 3

    def test_mixed_feasibility_and_objectives(self):
        chain = random_chain(20, rng=210)
        wmax = chain.max_vertex_weight()
        queries = [
            PartitionQuery.from_chain(chain, 2.0 * wmax, tag="ok-1"),
            PartitionQuery.from_chain(chain, 0.5 * wmax, tag="infeasible"),
            PartitionQuery.from_chain(
                chain, 2.0 * wmax, objective="processors", tag="procs"
            ),
            PartitionQuery.from_chain(chain, 3.0 * wmax, tag="ok-2"),
        ]
        routed = PartitionEngine().solve_many(queries, max_workers=0)
        direct = PartitionEngine().solve_many(
            queries, max_workers=0, use_plans=False
        )
        assert [r.ok for r in routed] == [True, False, True, True]
        assert [r.to_json() for r in routed] == [r.to_json() for r in direct]

    def test_pool_grouping_preserves_input_order(self):
        # The pool path submits queries sorted by chain payload so one
        # worker's cache sees a chain's queries back to back; results
        # must still come home in input order.
        queries = self.make_grouped_queries(num=9, chains=3)
        parallel = PartitionEngine().solve_many(
            queries, max_workers=2, chunksize=1
        )
        serial = PartitionEngine().solve_many(queries, max_workers=0)
        assert [r.index for r in parallel] == list(range(len(queries)))
        assert [r.to_json() for r in parallel] == [r.to_json() for r in serial]

    def test_single_query_groups_stay_on_per_call_path(self):
        engine = PartitionEngine()
        chain = random_chain(18, rng=220)
        one = [PartitionQuery.from_chain(chain, 2.0 * chain.max_vertex_weight())]
        results = engine.solve_many(one, max_workers=0)
        assert results[0].ok
        assert len(engine.plans) == 0  # a lone query never pays compilation


class TestBatchTelemetry:
    def test_last_batch_stats_aggregates_serial(self):
        from repro.observability import Tracer

        engine = PartitionEngine(tracer=Tracer())
        queries = make_queries(num=6)
        results = engine.solve_many(queries, max_workers=0)
        batch = engine.last_batch_stats
        assert batch is not None
        assert batch.queries == 6
        assert batch.failures == 0
        assert batch.latency.count == 6
        assert batch.wall_s > 0.0
        # Worker spans arrive tagged and in query order.
        indices = [r["query_index"] for r in batch.trace_records]
        assert indices == sorted(indices)
        assert set(indices) == set(range(6))
        # The per-worker cache op-counts survive aggregation.
        assert batch.counter.get("cache_misses") == 6
        assert batch.cache.misses == 6
        assert all(r.ok for r in results)

    def test_parallel_aggregation_matches_serial_counts(self):
        from repro.observability import Tracer

        queries = make_queries(num=8)
        serial = PartitionEngine(tracer=Tracer())
        parallel = PartitionEngine(tracer=Tracer())
        serial.solve_many(queries, max_workers=0)
        parallel.solve_many(queries, max_workers=2, chunksize=1)
        a, b = serial.last_batch_stats, parallel.last_batch_stats
        assert b.workers == 2
        # Deterministic quantities agree across execution modes.
        assert (a.queries, a.failures) == (b.queries, b.failures)
        assert a.counter.as_dict() == b.counter.as_dict()
        assert [r["query_index"] for r in a.trace_records] == [
            r["query_index"] for r in b.trace_records
        ]
        assert [r["path"] for r in a.trace_records] == [
            r["path"] for r in b.trace_records
        ]

    def test_failures_counted(self):
        from repro.observability import Tracer

        engine = PartitionEngine(tracer=Tracer())
        chain = random_chain(10, rng=21)
        good = PartitionQuery.from_chain(
            chain, 2.0 * chain.max_vertex_weight()
        )
        bad = PartitionQuery.from_chain(
            chain, 0.1 * chain.max_vertex_weight()
        )
        engine.solve_many([good, bad])
        batch = engine.last_batch_stats
        assert (batch.queries, batch.failures) == (2, 1)
        assert batch.as_dict()["failures"] == 1

    def test_traced_results_identical_to_untraced(self):
        from repro.observability import Tracer

        queries = make_queries(num=5)
        plain = PartitionEngine().solve_many(queries)
        traced = PartitionEngine(tracer=Tracer()).solve_many(queries)
        assert [
            (r.cut_indices, r.weight, r.num_components) for r in traced
        ] == [(r.cut_indices, r.weight, r.num_components) for r in plain]
        # Telemetry rides on the result object but stays off the wire.
        assert [r.to_json() for r in traced] == [r.to_json() for r in plain]
        assert all("spans" in r.telemetry for r in traced)
        assert all("spans" not in r.telemetry for r in plain)

    def test_untraced_engine_records_no_batch_stats(self):
        engine = PartitionEngine()
        engine.solve_many(make_queries(num=3))
        batch = engine.last_batch_stats
        assert batch is not None
        assert batch.queries == 3
        assert batch.trace_records == []  # no spans without a tracer

    def test_snapshot_metrics_mirrors_cache_and_batch(self):
        from repro.observability import Tracer

        engine = PartitionEngine(tracer=Tracer())
        engine.solve_many(make_queries(num=4), max_workers=0)
        metrics = engine.snapshot_metrics()
        names = {r["name"] for r in metrics.records()}
        assert "engine.batch.queries" in names
        assert "engine.cache.hits" in names
        assert "engine.batch.query_latency_s" in names
        assert metrics.counter("engine.batch.queries").value == 4

    def test_engine_solve_traced(self):
        from repro.observability import Tracer

        tracer = Tracer()
        engine = PartitionEngine(tracer=tracer)
        chain = random_chain(60, rng=22)
        bound = 2.0 * chain.max_vertex_weight()
        got = engine.solve(chain, bound)
        assert got.weight == bandwidth_min(chain, bound).weight
        span = tracer.find("engine_solve")
        assert span is not None
        assert span.attrs["n"] == 60
        assert tracer.find("cache_solve") is not None


class TestInverseWiring:
    def test_budget_plan_with_engine_matches(self):
        chain = random_chain(60, rng=7)
        engine = PartitionEngine()
        plain = partition_chain_for_processors(chain, 4)
        cached = partition_chain_for_processors(chain, 4, engine=engine)
        assert cached.bound == plain.bound
        assert (
            cached.bandwidth_cut.cut_indices == plain.bandwidth_cut.cut_indices
        )

    def test_chain_pareto_frontier(self):
        chain = random_chain(50, rng=8)
        rows = chain_pareto_frontier(chain, 5)
        assert [row["processors"] for row in rows] == [1, 2, 3, 4, 5]
        # Bounds tighten as the budget grows; bandwidth can only rise.
        bounds = [row["bound"] for row in rows]
        assert bounds == sorted(bounds, reverse=True)
        for row in rows:
            plan = partition_chain_for_processors(chain, row["processors"])
            assert row["bound"] == plan.bound
            assert row["bandwidth"] == plan.bandwidth_cut.weight
