"""Unit tests for the batched query runner and the ``repro batch`` CLI."""

import json

import pytest

from repro.cli import main
from repro.core.bandwidth import bandwidth_min
from repro.core.inverse import chain_pareto_frontier, partition_chain_for_processors
from repro.core.pipeline import partition_chain
from repro.engine import OBJECTIVES, PartitionEngine, PartitionQuery
from repro.graphs.generators import random_chain


def make_queries(num=12, seed=100):
    queries = []
    for i in range(num):
        chain = random_chain(20 + 5 * i, rng=seed + i)
        bound = (1.5 + 0.5 * (i % 4)) * chain.max_vertex_weight()
        queries.append(
            PartitionQuery.from_chain(chain, bound, tag=f"q{i}")
        )
    return queries


class TestSolve:
    def test_bandwidth_matches_reference(self):
        engine = PartitionEngine()
        chain = random_chain(80, rng=1)
        bound = 2.0 * chain.max_vertex_weight()
        got = engine.solve(chain, bound)
        ref = bandwidth_min(chain, bound)
        assert (got.cut_indices, got.weight) == (ref.cut_indices, ref.weight)

    def test_other_objectives_delegate(self):
        engine = PartitionEngine()
        chain = random_chain(30, rng=2)
        bound = 2.0 * chain.max_vertex_weight()
        for objective in OBJECTIVES:
            got = engine.solve(chain, bound, objective)
            ref = partition_chain(chain, bound, objective)
            assert got.cut_indices == ref.cut_indices

    def test_unknown_objective(self):
        engine = PartitionEngine()
        chain = random_chain(10, rng=3)
        with pytest.raises(ValueError):
            engine.solve(chain, 100.0, "makespan")

    def test_python_backend(self):
        engine = PartitionEngine(backend="python")
        chain = random_chain(50, rng=4)
        bound = 2.0 * chain.max_vertex_weight()
        assert engine.solve(chain, bound).weight == bandwidth_min(chain, bound).weight


class TestSolveMany:
    def test_serial_results_in_order(self):
        engine = PartitionEngine()
        queries = make_queries()
        results = engine.solve_many(queries)
        assert [r.index for r in results] == list(range(len(queries)))
        assert [r.tag for r in results] == [q.tag for q in queries]
        for query, result in zip(queries, results):
            ref = bandwidth_min(query.chain(), query.bound)
            assert result.ok
            assert (result.cut_indices, result.weight) == (
                ref.cut_indices,
                ref.weight,
            )

    def test_parallel_matches_serial(self):
        engine = PartitionEngine()
        queries = make_queries()
        serial = engine.solve_many(queries, max_workers=0)
        parallel = engine.solve_many(queries, max_workers=2, chunksize=1)
        assert [r.index for r in parallel] == list(range(len(queries)))
        assert [
            (r.cut_indices, r.weight, r.num_components) for r in parallel
        ] == [(r.cut_indices, r.weight, r.num_components) for r in serial]

    def test_errors_are_per_query(self):
        engine = PartitionEngine()
        chain = random_chain(10, rng=5)
        good = PartitionQuery.from_chain(
            chain, 2.0 * chain.max_vertex_weight(), tag="good"
        )
        bad = PartitionQuery.from_chain(
            chain, 0.1 * chain.max_vertex_weight(), tag="bad"
        )
        results = engine.solve_many([good, bad, good])
        assert [r.ok for r in results] == [True, False, True]
        assert "below the maximum vertex weight" in results[1].error

    def test_jsonl_round_trip(self):
        engine = PartitionEngine()
        queries = make_queries(num=4)
        lines = [
            json.dumps(
                {
                    "alpha": list(q.alpha),
                    "beta": list(q.beta),
                    "bound": q.bound,
                    "tag": q.tag,
                }
            )
            for q in queries
        ]
        results = engine.solve_jsonl(lines)
        direct = engine.solve_many(queries)
        assert [r.to_json() for r in results] == [r.to_json() for r in direct]


class TestBatchCli:
    def test_batch_subcommand(self, tmp_path, capsys):
        chain = random_chain(15, rng=6)
        records = [
            {
                "alpha": list(chain.alpha),
                "beta": list(chain.beta),
                "bound": 2.0 * chain.max_vertex_weight(),
                "tag": "ok",
            },
            {
                "alpha": [5.0, 1.0],
                "beta": [2.0],
                "bound": 0.5,
                "tag": "infeasible",
            },
        ]
        inp = tmp_path / "queries.jsonl"
        out = tmp_path / "results.jsonl"
        inp.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        code = main(
            ["batch", "--input", str(inp), "--output", str(out)]
        )
        assert code == 1  # one failed query
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert [row["tag"] for row in rows] == ["ok", "infeasible"]
        assert rows[0]["weight"] == pytest.approx(
            bandwidth_min(chain, records[0]["bound"]).weight
        )
        assert "error" in rows[1]

    def test_batch_all_ok_exit_zero(self, tmp_path):
        inp = tmp_path / "q.jsonl"
        out = tmp_path / "r.jsonl"
        inp.write_text(
            json.dumps({"alpha": [1, 1, 1], "beta": [1, 1], "bound": 2}) + "\n"
        )
        assert main(["batch", "--input", str(inp), "--output", str(out)]) == 0


class TestInverseWiring:
    def test_budget_plan_with_engine_matches(self):
        chain = random_chain(60, rng=7)
        engine = PartitionEngine()
        plain = partition_chain_for_processors(chain, 4)
        cached = partition_chain_for_processors(chain, 4, engine=engine)
        assert cached.bound == plain.bound
        assert (
            cached.bandwidth_cut.cut_indices == plain.bandwidth_cut.cut_indices
        )

    def test_chain_pareto_frontier(self):
        chain = random_chain(50, rng=8)
        rows = chain_pareto_frontier(chain, 5)
        assert [row["processors"] for row in rows] == [1, 2, 3, 4, 5]
        # Bounds tighten as the budget grows; bandwidth can only rise.
        bounds = [row["bound"] for row in rows]
        assert bounds == sorted(bounds, reverse=True)
        for row in rows:
            plan = partition_chain_for_processors(chain, row["processors"])
            assert row["bound"] == plan.bound
            assert row["bandwidth"] == plan.bandwidth_cut.weight
