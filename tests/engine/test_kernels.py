"""Unit tests for the NumPy fast-path kernels.

The contract is *bit-identical* output to the pure-Python reference on
every input — the property suite hammers random instances; here we pin
the known worked example, the degenerate shapes, and the fast TEMP_S
sweep against the reference queue.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.core.bandwidth import bandwidth_min
from repro.core.feasibility import InfeasibleBoundError
from repro.core.prime_subpaths import PrimeStructure, compute_prime_structure
from repro.engine import kernels
from repro.graphs.chain import Chain
from repro.graphs.generators import random_chain, uniform_chain

FIGURE1 = Chain([4, 3, 5, 2, 6], [7, 1, 9, 2])


def assert_structures_equal(chain, bound, apply_reduction=True):
    ref = PrimeStructure.compute(chain, bound, apply_reduction=apply_reduction)
    fast = compute_prime_structure(
        chain, bound, apply_reduction=apply_reduction, backend="numpy"
    )
    assert ref.primes == fast.primes
    assert ref.edges == fast.edges
    assert ref.q_values == fast.q_values
    assert ref.p == fast.p and ref.r == fast.r


class TestPrimeStructureNumpy:
    def test_figure1_example(self):
        assert_structures_equal(FIGURE1, 9)

    def test_single_task(self):
        assert_structures_equal(Chain([5.0], []), 5.0)

    def test_bound_equals_max_alpha(self):
        chain = random_chain(50, rng=1)
        assert_structures_equal(chain, chain.max_vertex_weight())

    def test_bound_swallows_chain(self):
        chain = random_chain(50, rng=2)
        fast = compute_prime_structure(
            chain, chain.total_weight() + 1, backend="numpy"
        )
        assert fast.p == 0 and fast.r == 0
        assert fast.min_prime_weight() == float("inf")

    def test_all_equal_weights(self):
        chain = uniform_chain(40, vertex_weight=2.0, edge_weight=3.0)
        for bound in (2.0, 4.0, 6.0, 79.0, 80.0, 81.0):
            assert_structures_equal(chain, bound)

    def test_no_reduction(self):
        chain = random_chain(60, rng=3)
        assert_structures_equal(
            chain, 2.5 * chain.max_vertex_weight(), apply_reduction=False
        )

    def test_infeasible_bound_raises(self):
        with pytest.raises(InfeasibleBoundError):
            compute_prime_structure(FIGURE1, 5.0, backend="numpy")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            compute_prime_structure(FIGURE1, 9.0, backend="fortran")

    def test_array_structure_statistics_match(self):
        chain = random_chain(80, rng=4)
        bound = 3.0 * chain.max_vertex_weight()
        ref = PrimeStructure.compute(chain, bound)
        fast = compute_prime_structure(chain, bound, backend="numpy")
        assert fast.q == pytest.approx(ref.q)
        assert fast.mean_prime_length() == pytest.approx(ref.mean_prime_length())
        assert fast.min_prime_weight() == ref.min_prime_weight()


class TestMembershipKernel:
    def test_matches_reference_on_known_chain(self):
        from repro.core.prime_subpaths import edge_membership_intervals

        primes = PrimeStructure.compute(FIGURE1, 9).primes
        lo_ref, hi_ref = edge_membership_intervals(primes, FIGURE1.num_edges)
        first = np.asarray([p.first_edge for p in primes])
        last = np.asarray([p.last_edge for p in primes])
        lo, hi = kernels.membership_intervals(first, last, FIGURE1.num_edges)
        assert lo.tolist() == lo_ref
        assert hi.tolist() == hi_ref


class TestFastSweep:
    def test_matches_reference_queue(self):
        chain = random_chain(200, rng=5, vertex_range=(1, 10), edge_range=(1, 100))
        for ratio in (1.0, 1.3, 2.0, 5.0, 25.0):
            bound = ratio * chain.max_vertex_weight()
            ref = bandwidth_min(chain, bound)
            structure = compute_prime_structure(chain, bound, backend="numpy")
            cut, weight = kernels.bandwidth_sweep(structure)
            assert cut == ref.cut_indices
            assert weight == ref.weight

    def test_accepts_reference_structure(self):
        structure = PrimeStructure.compute(FIGURE1, 9)
        cut, weight = kernels.bandwidth_sweep(structure)
        ref = bandwidth_min(FIGURE1, 9)
        assert cut == ref.cut_indices and weight == ref.weight

    def test_empty_structure(self):
        assert kernels.sweep_min_cut([], [], [], []) == ([], 0.0)


class TestWeightOnlyFastPath:
    """The compiled-plan weight pipeline, pinned kernel by kernel.

    ``reduced_class_arrays`` + ``sweep_min_weight`` are the hottest form
    of Algorithm 4.1 (no per-edge arrays, no solution arena); both claim
    bit-identical results to the cut-capable path, so assert exactly
    that over a tie-heavy battery.
    """

    @staticmethod
    def battery():
        chains = [FIGURE1, uniform_chain(2), uniform_chain(25, 3.0, 5.0)]
        for n, seed in ((3, 1), (5, 2), (8, 3), (13, 4), (21, 5), (34, 6)):
            chains.append(random_chain(n, rng=seed))
            chains.append(random_chain(n, rng=seed + 100, integer_weights=True))
        chains.append(
            random_chain(
                80,
                rng=9,
                vertex_range=(1, 4),
                edge_range=(1, 3),
                integer_weights=True,
            )
        )
        return chains

    @staticmethod
    def bounds_for(chain):
        wmax = chain.max_vertex_weight()
        total = float(np.sum(np.asarray(chain.alpha, dtype=np.float64)))
        return (wmax, 1.1 * wmax, 1.5 * wmax, 2.0 * wmax, 3.0 * wmax, total)

    @staticmethod
    def class_arrays(chain, bound):
        prefix = kernels.prefix_array(chain)
        first_tasks, last_tasks = kernels.prime_windows(prefix, bound)
        if first_tasks.shape[0] == 0:
            return None
        beta = kernels.beta_array(chain)
        return kernels.reduced_class_arrays(
            beta, first_tasks, last_tasks, chain.num_edges
        )

    def test_pipeline_matches_bandwidth_min(self):
        for chain in self.battery():
            for bound in self.bounds_for(chain):
                arrays = self.class_arrays(chain, bound)
                if arrays is None:
                    weight = 0.0
                else:
                    class_w, class_first, class_last = arrays
                    head = int(np.searchsorted(class_first, 1))
                    weight = kernels.sweep_min_weight(
                        class_w.tolist(),
                        class_first.tolist(),
                        class_last.tolist(),
                        head,
                    )
                assert weight == bandwidth_min(chain, bound).weight

    def test_weight_sweep_matches_cut_sweep(self):
        # Identical reduced columns through both sweeps: the weight-only
        # recurrence must agree with the arena-building one everywhere.
        for chain in self.battery():
            for bound in self.bounds_for(chain):
                arrays = self.class_arrays(chain, bound)
                if arrays is None:
                    continue
                class_w, class_first, class_last = arrays
                cols = (
                    class_w.tolist(),
                    class_first.tolist(),
                    class_last.tolist(),
                )
                head = int(np.searchsorted(class_first, 1))
                _, cut_weight = kernels.sweep_min_cut(
                    list(range(class_w.shape[0])), *cols
                )
                assert kernels.sweep_min_weight(*cols, head) == cut_weight

    def test_classes_match_reduced_edge_representatives(self):
        # Class weights/windows must equal the minimum-weight
        # representatives the per-edge reduction selects.
        for chain in self.battery():
            beta = kernels.beta_array(chain)
            prefix = kernels.prefix_array(chain)
            for bound in self.bounds_for(chain):
                first_tasks, last_tasks = kernels.prime_windows(prefix, bound)
                if first_tasks.shape[0] == 0:
                    continue
                lo, hi = kernels.membership_intervals(
                    first_tasks, last_tasks - 1, chain.num_edges
                )
                _, edge_weight, edge_first, edge_last = (
                    kernels.reduced_edge_arrays(
                        beta, lo, hi, apply_reduction=True
                    )
                )
                class_w, class_first, class_last = kernels.reduced_class_arrays(
                    beta, first_tasks, last_tasks, chain.num_edges
                )
                assert class_w.tolist() == list(edge_weight)
                assert class_first.tolist() == list(edge_first)
                assert class_last.tolist() == list(edge_last)

    @classmethod
    def pipeline_weight(cls, chain, bound):
        arrays = cls.class_arrays(chain, bound)
        if arrays is None:
            return 0.0
        class_w, class_first, class_last = arrays
        head = int(np.searchsorted(class_first, 1))
        return kernels.sweep_min_weight(
            class_w.tolist(), class_first.tolist(), class_last.tolist(), head
        )

    def test_extension_row_start_regression(self):
        # The extension push must anchor its row at last_hi + 1: an
        # off-by-one start makes a later retire break early and reuse a
        # stale predecessor weight (found by mutation analysis).
        chain = Chain(
            [1, 1, 6, 3, 2, 2, 2, 6, 1, 6, 6, 5],
            [1, 5, 4, 1, 1, 1, 2, 2, 5, 5, 1],
        )
        ref = bandwidth_min(chain, 12.0)
        assert ref.weight == 8.0
        assert self.pipeline_weight(chain, 12.0) == ref.weight

    def test_drained_queue_with_zero_weight_edges(self):
        # Zero-weight edges are legal (beta >= 0): after a full retire a
        # fresh candidate can tie the drained bottom row's W, so the
        # replace guard must test the live-row count strictly (found by
        # mutation analysis).
        chain = Chain([2, 4, 6, 1, 1, 5, 1], [2, 4, 0, 4, 1, 0])
        bound = 1.2 * 6.0
        ref = bandwidth_min(chain, bound)
        assert ref.weight == 4.0
        assert self.pipeline_weight(chain, bound) == ref.weight

    def test_synthetic_columns_match_cut_sweep(self):
        # Stress columns with coverage gaps and zero weights: the
        # drained-queue anchor must start at the class's own first prime
        # (found by mutation analysis), and a seeded fuzz keeps both
        # sweeps pinned together over shapes no single chain produces.
        weights = [4.0, 2.0, 3.0, 4.0, 4.0, 1.0]
        firsts = [0, 3, 3, 3, 4, 6]
        lasts = [1, 4, 5, 7, 7, 7]
        _, ref = kernels.sweep_min_cut(
            list(range(len(weights))), weights, firsts, lasts
        )
        assert ref == 8.0
        assert kernels.sweep_min_weight(weights, firsts, lasts, 1) == ref
        rng = np.random.default_rng(20260808)
        for _ in range(500):
            r = int(rng.integers(1, 10))
            firsts, lasts, weights = [], [], []
            fp = int(rng.integers(0, 2))
            lp = fp + int(rng.integers(0, 3))
            for _ in range(r):
                if firsts and (fp, lp) == (firsts[-1], lasts[-1]):
                    lp += 1
                firsts.append(fp)
                lasts.append(lp)
                weights.append(float(rng.integers(0, 5)))
                fp += int(rng.integers(0, 4))
                lp = max(lp, fp) + int(rng.integers(0, 3))
            head = int(np.searchsorted(np.asarray(firsts), 1))
            _, ref = kernels.sweep_min_cut(
                list(range(r)), weights, firsts, lasts
            )
            got = kernels.sweep_min_weight(weights, firsts, lasts, head)
            assert got == ref, (weights, firsts, lasts)

    def test_empty_windows_return_empty_classes(self):
        empty_i = np.empty(0, dtype=np.int64)
        class_w, class_first, class_last = kernels.reduced_class_arrays(
            np.empty(0, dtype=np.float64), empty_i, empty_i, 0
        )
        for arr in (class_w, class_first, class_last):
            assert arr.shape == (0,)


class TestBandwidthBackendFlag:
    def test_numpy_backend_same_result(self):
        chain = random_chain(120, rng=6)
        bound = 2.0 * chain.max_vertex_weight()
        ref = bandwidth_min(chain, bound)
        fast = bandwidth_min(chain, bound, backend="numpy")
        assert fast.cut_indices == ref.cut_indices
        assert fast.weight == ref.weight

    def test_numpy_backend_with_stats_falls_back(self):
        chain = random_chain(60, rng=7)
        bound = 2.0 * chain.max_vertex_weight()
        result = bandwidth_min(chain, bound, backend="numpy", collect_stats=True)
        assert result.stats is not None
        assert result.stats.p > 0

    def test_precomputed_structure_is_used(self):
        chain = random_chain(60, rng=8)
        bound = 2.0 * chain.max_vertex_weight()
        structure = compute_prime_structure(chain, bound, backend="numpy")
        result = bandwidth_min(chain, bound, backend="numpy", structure=structure)
        assert result.weight == bandwidth_min(chain, bound).weight


class TestFeasibleComponents:
    def test_matches_chain_check(self):
        chain = random_chain(30, rng=9)
        prefix = kernels.prefix_array(chain)
        bound = 2.0 * chain.max_vertex_weight()
        cut = bandwidth_min(chain, bound).cut_indices
        assert kernels.feasible_components(prefix, cut, bound)
        assert kernels.feasible_components(prefix, cut, bound) == (
            chain.is_feasible_cut(cut, bound)
        )

    def test_detects_overweight_block(self):
        chain = Chain([3, 3, 3], [1, 1])
        prefix = kernels.prefix_array(chain)
        assert not kernels.feasible_components(prefix, [], 5.0)
        assert kernels.feasible_components(prefix, [0, 1], 5.0)

    def test_feasible_components_boundary_blocks(self):
        # The first and last blocks are the easiest to lose to an
        # off-by-one: [1, 1, 10] with the cut after task 0 leaves a
        # trailing block of weight 11.
        prefix = np.array([0.0, 1.0, 2.0, 12.0])
        assert kernels.feasible_components(prefix, [0], 11.0)
        assert not kernels.feasible_components(prefix, [0], 2.0)
        assert kernels.feasible_components(prefix, [1], 10.0)
        # Middle-heavy twin: [1, 10, 1] with the same cut.
        prefix_mid = np.array([0.0, 1.0, 11.0, 12.0])
        assert not kernels.feasible_components(prefix_mid, [0], 2.0)

    def test_feasible_components_unsorted_duplicate_cut(self):
        # set([8, 1]) iterates as [8, 1] under CPython's small-int
        # hashing, so a missing sort produces garbage block boundaries.
        ones = np.arange(13, dtype=np.float64)  # twelve unit tasks
        assert kernels.feasible_components(ones, [8, 1], 8.0)
        assert kernels.feasible_components(ones, [8, 1, 8], 8.0)
        assert not kernels.feasible_components(ones, [8, 1], 6.0)


class TestSweepFixupLoops:
    """Chains where ``prefix[j] <= starts + bound`` (searchsorted form)
    and ``prefix[j] - starts <= bound`` (the reference's subtraction
    form) disagree in float64, so the fix-up sweeps in
    :func:`kernels.prime_windows` must actually run."""

    DOWN_WEIGHTS = [
        0.24, 0.1, 0.17, 0.31, 0.32, 0.29, 0.11, 0.31, 0.16, 0.26, 0.09, 0.34,
    ]
    UP_WEIGHTS = [0.2, 0.08, 0.17, 0.12, 0.15, 0.07, 0.25, 0.14, 0.3, 0.18]

    def test_down_sweep_required(self):
        chain = Chain(self.DOWN_WEIGHTS, [1.0] * (len(self.DOWN_WEIGHTS) - 1))
        assert_structures_equal(chain, 0.82)

    def test_up_sweep_required(self):
        chain = Chain(self.UP_WEIGHTS, [1.0] * (len(self.UP_WEIGHTS) - 1))
        assert_structures_equal(chain, 0.52)

    def test_empty_prefix_returns_window_pair(self):
        first, last = kernels.prime_windows(np.zeros(1), 5.0)
        assert first.size == 0 and last.size == 0
        assert first.dtype == np.int64 and last.dtype == np.int64

    def test_validate_bound_zero_bound_message(self):
        # bound == 0 must be rejected as non-positive even when
        # alpha_max is also 0 (the degenerate all-zero chain).
        with pytest.raises(ValueError, match="positive"):
            kernels.validate_bound_array(0.0, 0.0)

    def test_down_sweep_to_minimum_window(self):
        # prefix[a+2] - prefix[a] > bound while prefix[a+2] <= prefix[a]
        # + bound (at a = 2): the searchsorted seed lands at a + 3 and
        # the down sweep must descend all the way to the two-task floor.
        weights = [0.28, 0.35, 0.37, 0.35, 0.37]
        chain = Chain(weights, [1.0] * (len(weights) - 1))
        assert_structures_equal(chain, 0.72)
