"""Unit tests for the NumPy fast-path kernels.

The contract is *bit-identical* output to the pure-Python reference on
every input — the property suite hammers random instances; here we pin
the known worked example, the degenerate shapes, and the fast TEMP_S
sweep against the reference queue.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.core.bandwidth import bandwidth_min
from repro.core.feasibility import InfeasibleBoundError
from repro.core.prime_subpaths import PrimeStructure, compute_prime_structure
from repro.engine import kernels
from repro.graphs.chain import Chain
from repro.graphs.generators import random_chain, uniform_chain

FIGURE1 = Chain([4, 3, 5, 2, 6], [7, 1, 9, 2])


def assert_structures_equal(chain, bound, apply_reduction=True):
    ref = PrimeStructure.compute(chain, bound, apply_reduction=apply_reduction)
    fast = compute_prime_structure(
        chain, bound, apply_reduction=apply_reduction, backend="numpy"
    )
    assert ref.primes == fast.primes
    assert ref.edges == fast.edges
    assert ref.q_values == fast.q_values
    assert ref.p == fast.p and ref.r == fast.r


class TestPrimeStructureNumpy:
    def test_figure1_example(self):
        assert_structures_equal(FIGURE1, 9)

    def test_single_task(self):
        assert_structures_equal(Chain([5.0], []), 5.0)

    def test_bound_equals_max_alpha(self):
        chain = random_chain(50, rng=1)
        assert_structures_equal(chain, chain.max_vertex_weight())

    def test_bound_swallows_chain(self):
        chain = random_chain(50, rng=2)
        fast = compute_prime_structure(
            chain, chain.total_weight() + 1, backend="numpy"
        )
        assert fast.p == 0 and fast.r == 0
        assert fast.min_prime_weight() == float("inf")

    def test_all_equal_weights(self):
        chain = uniform_chain(40, vertex_weight=2.0, edge_weight=3.0)
        for bound in (2.0, 4.0, 6.0, 79.0, 80.0, 81.0):
            assert_structures_equal(chain, bound)

    def test_no_reduction(self):
        chain = random_chain(60, rng=3)
        assert_structures_equal(
            chain, 2.5 * chain.max_vertex_weight(), apply_reduction=False
        )

    def test_infeasible_bound_raises(self):
        with pytest.raises(InfeasibleBoundError):
            compute_prime_structure(FIGURE1, 5.0, backend="numpy")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            compute_prime_structure(FIGURE1, 9.0, backend="fortran")

    def test_array_structure_statistics_match(self):
        chain = random_chain(80, rng=4)
        bound = 3.0 * chain.max_vertex_weight()
        ref = PrimeStructure.compute(chain, bound)
        fast = compute_prime_structure(chain, bound, backend="numpy")
        assert fast.q == pytest.approx(ref.q)
        assert fast.mean_prime_length() == pytest.approx(ref.mean_prime_length())
        assert fast.min_prime_weight() == ref.min_prime_weight()


class TestMembershipKernel:
    def test_matches_reference_on_known_chain(self):
        from repro.core.prime_subpaths import edge_membership_intervals

        primes = PrimeStructure.compute(FIGURE1, 9).primes
        lo_ref, hi_ref = edge_membership_intervals(primes, FIGURE1.num_edges)
        first = np.asarray([p.first_edge for p in primes])
        last = np.asarray([p.last_edge for p in primes])
        lo, hi = kernels.membership_intervals(first, last, FIGURE1.num_edges)
        assert lo.tolist() == lo_ref
        assert hi.tolist() == hi_ref


class TestFastSweep:
    def test_matches_reference_queue(self):
        chain = random_chain(200, rng=5, vertex_range=(1, 10), edge_range=(1, 100))
        for ratio in (1.0, 1.3, 2.0, 5.0, 25.0):
            bound = ratio * chain.max_vertex_weight()
            ref = bandwidth_min(chain, bound)
            structure = compute_prime_structure(chain, bound, backend="numpy")
            cut, weight = kernels.bandwidth_sweep(structure)
            assert cut == ref.cut_indices
            assert weight == ref.weight

    def test_accepts_reference_structure(self):
        structure = PrimeStructure.compute(FIGURE1, 9)
        cut, weight = kernels.bandwidth_sweep(structure)
        ref = bandwidth_min(FIGURE1, 9)
        assert cut == ref.cut_indices and weight == ref.weight

    def test_empty_structure(self):
        assert kernels.sweep_min_cut([], [], [], []) == ([], 0.0)


class TestBandwidthBackendFlag:
    def test_numpy_backend_same_result(self):
        chain = random_chain(120, rng=6)
        bound = 2.0 * chain.max_vertex_weight()
        ref = bandwidth_min(chain, bound)
        fast = bandwidth_min(chain, bound, backend="numpy")
        assert fast.cut_indices == ref.cut_indices
        assert fast.weight == ref.weight

    def test_numpy_backend_with_stats_falls_back(self):
        chain = random_chain(60, rng=7)
        bound = 2.0 * chain.max_vertex_weight()
        result = bandwidth_min(chain, bound, backend="numpy", collect_stats=True)
        assert result.stats is not None
        assert result.stats.p > 0

    def test_precomputed_structure_is_used(self):
        chain = random_chain(60, rng=8)
        bound = 2.0 * chain.max_vertex_weight()
        structure = compute_prime_structure(chain, bound, backend="numpy")
        result = bandwidth_min(chain, bound, backend="numpy", structure=structure)
        assert result.weight == bandwidth_min(chain, bound).weight


class TestFeasibleComponents:
    def test_matches_chain_check(self):
        chain = random_chain(30, rng=9)
        prefix = kernels.prefix_array(chain)
        bound = 2.0 * chain.max_vertex_weight()
        cut = bandwidth_min(chain, bound).cut_indices
        assert kernels.feasible_components(prefix, cut, bound)
        assert kernels.feasible_components(prefix, cut, bound) == (
            chain.is_feasible_cut(cut, bound)
        )

    def test_detects_overweight_block(self):
        chain = Chain([3, 3, 3], [1, 1])
        prefix = kernels.prefix_array(chain)
        assert not kernels.feasible_components(prefix, [], 5.0)
        assert kernels.feasible_components(prefix, [0, 1], 5.0)
