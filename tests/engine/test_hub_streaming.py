"""Engine ↔ telemetry-hub integration: live events while batches run."""

import json

import pytest

from repro.engine import PartitionEngine
from repro.graphs.chain import Chain
from repro.graphs.generators import random_chain
from repro.observability import (
    RingBufferSubscriber,
    StreamingJsonlSink,
    TelemetryHub,
    read_trace,
)


def queries(count=6, n=24):
    out = []
    for i in range(count):
        chain = random_chain(n, rng=i)
        out.append(
            {"alpha": list(chain.alpha), "beta": list(chain.beta),
             "bound": 4.0 * chain.max_vertex_weight(), "tag": f"q{i}"}
        )
    return out


def jsonl(records):
    return [json.dumps(record) for record in records]


class TestHubWiring:
    def test_default_engine_has_disabled_hub(self):
        engine = PartitionEngine()
        assert engine.hub.enabled is False

    def test_hub_threads_into_cache(self):
        hub = TelemetryHub([RingBufferSubscriber()])
        engine = PartitionEngine(hub=hub)
        assert engine.cache.hub is hub

    def test_no_events_when_hub_absent(self):
        engine = PartitionEngine()
        engine.solve_jsonl(jsonl(queries(2)))
        # Nothing to assert beyond "it ran" — the null hub swallows all.
        assert engine.hub.enabled is False


class TestBatchStreaming:
    def solve(self, workers=0, count=6):
        ring = RingBufferSubscriber()
        hub = TelemetryHub([ring])
        engine = PartitionEngine(hub=hub)
        results = engine.solve_jsonl(jsonl(queries(count)),
                                     max_workers=workers)
        return ring.events(), results

    def test_serial_batch_publishes_per_query_solve_events(self):
        events, results = self.solve(workers=0)
        solves = [e for e in events if e.get("event") == "solve"]
        assert len(solves) == len(results) == 6
        assert {e["tag"] for e in solves} == {f"q{i}" for i in range(6)}
        assert all(e["ok"] for e in solves)
        assert all(e["duration_s"] >= 0.0 for e in solves)
        assert all("t" in e for e in events)

    def test_batch_summary_event_last(self):
        events, _ = self.solve()
        (batch,) = [e for e in events if e.get("event") == "batch"]
        assert batch["queries"] == 6
        assert batch["failures"] == 0
        assert "cache_hit_rate" in batch
        assert "plan_occupancy" in batch
        assert events[-1] is batch

    def test_latency_metric_event_per_query(self):
        events, _ = self.solve()
        latencies = [
            e for e in events
            if e.get("event") == "metric"
            and e.get("name") == "engine.batch.query_latency_s"
        ]
        assert len(latencies) == 6

    def test_pool_batch_streams_each_result(self):
        events, results = self.solve(workers=2)
        solves = [e for e in events if e.get("event") == "solve"]
        assert len(solves) == len(results) == 6
        assert {e["tag"] for e in solves} == {f"q{i}" for i in range(6)}

    def test_infeasible_query_streams_not_ok(self):
        chain = Chain([5.0, 5.0], [1.0])
        ring = RingBufferSubscriber()
        engine = PartitionEngine(hub=TelemetryHub([ring]))
        engine.solve_jsonl(jsonl([
            {"alpha": list(chain.alpha), "beta": list(chain.beta),
             "bound": 1.0, "tag": "bad"}
        ]))
        (solve,) = [e for e in ring.events() if e.get("event") == "solve"]
        assert solve["ok"] is False
        assert solve["error"]


class TestSingleSolveEvents:
    def test_solve_publishes_event_and_latency(self):
        ring = RingBufferSubscriber()
        engine = PartitionEngine(hub=TelemetryHub([ring]))
        chain = random_chain(32, rng=0)
        engine.solve(chain, 4.0 * chain.max_vertex_weight())
        kinds = [e.get("event") for e in ring.events()]
        assert "solve" in kinds
        assert any(
            e.get("name") == "engine.query_latency_s" for e in ring.events()
        )

    def test_optimality_gap_streams_under_verify(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "1")
        ring = RingBufferSubscriber()
        engine = PartitionEngine(hub=TelemetryHub([ring]))
        chain = random_chain(32, rng=0)
        engine.solve(chain, 4.0 * chain.max_vertex_weight())
        (gap,) = [
            e for e in ring.events()
            if e.get("name") == "solve.optimality_gap"
        ]
        assert 0.0 <= gap["value"] <= 1.0

    def test_no_gap_event_without_verify(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY", raising=False)
        ring = RingBufferSubscriber()
        engine = PartitionEngine(hub=TelemetryHub([ring]))
        chain = random_chain(32, rng=0)
        engine.solve(chain, 4.0 * chain.max_vertex_weight())
        assert not [
            e for e in ring.events()
            if e.get("name") == "solve.optimality_gap"
        ]


class TestStreamedTraceFile:
    def test_streamed_file_is_valid_schema_v2(self, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        with StreamingJsonlSink(path, meta={"workload": "batch"}) as sink:
            engine = PartitionEngine(hub=TelemetryHub([sink]))
            engine.solve_jsonl(jsonl(queries(4)))
        records = read_trace(path)
        assert records[0]["kind"] == "meta"
        assert records[0]["schema"] == 2
        kinds = {r.get("event") for r in records if r["kind"] == "event"}
        assert "solve" in kinds
        assert "metric" in kinds
        assert "batch" in kinds

    def test_file_parseable_while_batch_is_mid_flight(self, tmp_path):
        # The crash-safety contract end-to-end: after every published
        # event the file on disk is complete lines only.
        path = str(tmp_path / "stream.jsonl")
        seen_counts = []
        sink = StreamingJsonlSink(path)

        class Spy:
            def emit(self, event):
                # Re-read the file *during* the batch at each event.
                seen_counts.append(len(read_trace(path)))

            def close(self):
                pass

        hub = TelemetryHub([sink, Spy()])
        engine = PartitionEngine(hub=hub)
        engine.solve_jsonl(jsonl(queries(3)))
        hub.close()
        assert seen_counts  # spy actually ran mid-batch
        # Each snapshot had the header plus every event published so far.
        assert seen_counts == sorted(seen_counts)
        assert seen_counts[0] >= 1

    def test_gap_histogram_lands_in_batch_stats(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "1")
        engine = PartitionEngine()
        engine.solve_jsonl(jsonl(queries(3)))
        stats = engine.last_batch_stats
        assert stats is not None
        gap_summary = stats.as_dict()["optimality_gap"]
        assert gap_summary is not None
        assert gap_summary["count"] == 3
        assert 0.0 <= gap_summary["max"] <= 1.0
