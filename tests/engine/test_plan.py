"""Unit tests for compiled chain plans and their engine wiring.

A :class:`~repro.engine.plan.CompiledChainPlan` is an optimization, not
an alternative algorithm, so the contract throughout is exact equality
with per-call :func:`repro.core.bandwidth.bandwidth_min` — the same
floats and the same cut lists, never approximations.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.core.bandwidth import bandwidth_min
from repro.core.feasibility import InfeasibleBoundError
from repro.engine import PartitionEngine, PlanCache, compile_chain
from repro.engine.plan import CompiledChainPlan
from repro.graphs.chain import Chain
from repro.graphs.generators import random_chain
from repro.observability import MetricsRegistry, Tracer


def bounds_for(chain, count=12, seed=0):
    """Unsorted, duplicate-heavy feasible bounds including K = max alpha."""
    import random

    rng = random.Random(seed)
    wmax = chain.max_vertex_weight()
    ks = [wmax * (1.0 + 3.0 * rng.random()) for _ in range(count - 3)]
    ks += [float(wmax), ks[0], float(wmax)]  # tight bound + duplicates
    rng.shuffle(ks)
    return ks


class TestCompile:
    def test_basics(self):
        chain = random_chain(40, rng=1)
        plan = compile_chain(chain)
        assert isinstance(plan, CompiledChainPlan)
        assert plan.fingerprint == chain.fingerprint()
        assert len(plan) == 0  # nothing built until queried
        assert "CompiledChainPlan" in repr(plan)

    def test_rejects_python_backend(self):
        with pytest.raises(ValueError, match="array backend"):
            compile_chain(random_chain(5, rng=2), backend="python")

    def test_compile_counter_and_span(self):
        metrics = MetricsRegistry()
        tracer = Tracer()
        compile_chain(random_chain(10, rng=3), tracer=tracer, metrics=metrics)
        assert metrics.counter("engine.plan.compiled").value == 1
        assert tracer.find("plan_compile") is not None


class TestSolveBounds:
    def test_matches_per_call_solves(self):
        chain = random_chain(120, rng=4)
        ks = bounds_for(chain)
        weights = compile_chain(chain).solve_bounds(ks)
        assert weights.shape == (len(ks),)
        for k, weight in zip(ks, weights):
            assert weight == bandwidth_min(chain, k).weight

    def test_return_cuts_matches_per_call(self):
        chain = random_chain(90, rng=5)
        ks = bounds_for(chain, seed=5)
        weights, cuts = compile_chain(chain).solve_bounds(ks, return_cuts=True)
        for k, weight, cut in zip(ks, weights, cuts):
            ref = bandwidth_min(chain, k)
            assert cut == list(ref.cut_indices)
            assert weight == ref.weight

    def test_cut_lists_are_fresh(self):
        chain = random_chain(30, rng=6)
        bound = 2.0 * chain.max_vertex_weight()
        _, cuts = compile_chain(chain).solve_bounds(
            [bound, bound], return_cuts=True
        )
        cuts[0].append(-1)
        assert cuts[1] == cuts[0][:-1]  # sibling entry unharmed

    def test_singleton_chain(self):
        plan = compile_chain(Chain([5.0], []))
        weights, cuts = plan.solve_bounds([5.0, 7.5], return_cuts=True)
        assert weights.tolist() == [0.0, 0.0]
        assert cuts == [[], []]

    def test_numpy_input_accepted(self):
        chain = random_chain(25, rng=7)
        ks = np.asarray(bounds_for(chain, count=6, seed=7))
        weights = compile_chain(chain).solve_bounds(ks)
        assert weights.tolist() == [
            bandwidth_min(chain, float(k)).weight for k in ks
        ]

    def test_input_validation(self):
        plan = compile_chain(random_chain(10, rng=8))
        with pytest.raises(ValueError, match="at least one"):
            plan.solve_bounds([])
        with pytest.raises(ValueError, match="one-dimensional"):
            plan.solve_bounds([[2.0, 3.0]])
        with pytest.raises(ValueError, match="finite"):
            plan.solve_bounds([2.0, float("inf")])
        with pytest.raises(ValueError, match="finite"):
            plan.solve_bounds([float("nan")])

    def test_infeasible_bound_raises(self):
        chain = random_chain(10, rng=9)
        plan = compile_chain(chain)
        feasible = 2.0 * chain.max_vertex_weight()
        with pytest.raises(InfeasibleBoundError):
            plan.solve_bounds([feasible, 0.5 * chain.max_vertex_weight()])

    def test_structures_memoized_across_calls(self):
        chain = random_chain(60, rng=10)
        metrics = MetricsRegistry()
        plan = compile_chain(chain, metrics=metrics)
        bound = 2.0 * chain.max_vertex_weight()
        plan.solve_bounds([bound])
        built_once = metrics.counter("engine.plan.structures.built").value
        plan.solve_bounds([bound, bound])
        assert metrics.counter("engine.plan.structures.built").value == built_once
        assert metrics.counter("engine.plan.structures.reused").value >= 1
        assert metrics.counter("engine.plan.queries").value == 3
        assert metrics.counter("engine.plan.sweeps").value == 2

    def test_lookup_survives_descending_insertion_order(self):
        # Structures remembered high-bound-first must still be found by
        # the bisect lookup: _starts has to stay sorted even when the
        # memo's insertion order is not.
        chain = random_chain(60, rng=11)
        metrics = MetricsRegistry()
        plan = compile_chain(chain, metrics=metrics)
        wmax = chain.max_vertex_weight()
        plan.solve_bounds([6.0 * wmax])
        plan.solve_bounds([wmax])
        built = metrics.counter("engine.plan.structures.built").value
        weights = plan.solve_bounds([wmax, 6.0 * wmax])
        assert metrics.counter("engine.plan.structures.built").value == built
        assert metrics.counter("engine.plan.structures.reused").value >= 2
        assert weights[0] == bandwidth_min(chain, wmax).weight
        assert weights[1] == bandwidth_min(chain, 6.0 * wmax).weight

    def test_build_arrays_handles_primeless_bounds(self):
        # The cut-capable array build is only reached lazily, so pin the
        # shape of its empty (no prime subpaths) result directly.
        chain = random_chain(20, rng=12)
        plan = compile_chain(chain)
        bound = 2.0 * float(np.sum(chain.alpha))
        edge_index, edge_weight, edge_first, edge_last, p, valid_until = (
            plan._build_arrays(bound)
        )
        assert p == 0
        assert valid_until == float("inf")
        for arr in (edge_index, edge_weight, edge_first, edge_last):
            assert arr.shape == (0,)

    def test_memo_eviction_keeps_answers_exact(self):
        chain = random_chain(80, rng=11)
        plan = compile_chain(chain, max_structures=2)
        ks = bounds_for(chain, count=16, seed=11)
        weights = plan.solve_bounds(ks)
        assert len(plan) <= 2
        for k, weight in zip(ks, weights):
            assert weight == bandwidth_min(chain, k).weight

    def test_traced_sweep_records_span(self):
        chain = random_chain(30, rng=12)
        tracer = Tracer()
        plan = compile_chain(chain, tracer=tracer)
        ks = bounds_for(chain, count=5, seed=12)
        weights = plan.solve_bounds(ks)
        span = tracer.find("plan_solve_bounds")
        assert span is not None
        assert span.attrs["queries"] == 5
        assert span.attrs["structures_built"] >= 1
        assert weights.tolist() == [bandwidth_min(chain, k).weight for k in ks]

    def test_verify_mode_certifies_every_answer(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "1")
        chain = random_chain(40, rng=13)
        ks = bounds_for(chain, count=6, seed=13)
        weights = compile_chain(chain).solve_bounds(ks)
        for k, weight in zip(ks, weights):
            assert weight == bandwidth_min(chain, k).weight

    def test_verify_mode_rejects_corrupted_structure(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "1")
        from repro.verify import VerificationError

        chain = random_chain(40, rng=14)
        plan = compile_chain(chain)
        bound = 2.0 * chain.max_vertex_weight()
        plan.solve_bounds([bound])  # build honestly, then corrupt the memo
        frozen = next(iter(plan._memo.values()))
        frozen.weight += 1.0
        with pytest.raises(VerificationError):
            plan.solve_bounds([bound])


class TestSolveBetaSweep:
    def test_matches_per_call_on_perturbed_chains(self):
        chain = random_chain(60, rng=20)
        bound = 2.5 * chain.max_vertex_weight()
        betas = [
            list(chain.beta),
            [2.0 * b for b in chain.beta],
            [0.25 * b + 1.0 for b in chain.beta],
            list(reversed(chain.beta)),
            [0.0] * chain.num_edges,
        ]
        out = compile_chain(chain).solve_beta_sweep(betas, bound)
        assert out.shape == (len(betas),)
        for row, weight in zip(betas, out):
            assert weight == bandwidth_min(Chain(chain.alpha, row), bound).weight

    def test_tight_bound(self):
        chain = random_chain(40, rng=21)
        bound = float(chain.max_vertex_weight())
        betas = [list(chain.beta), [3.0 * b for b in chain.beta]]
        out = compile_chain(chain).solve_beta_sweep(betas, bound)
        for row, weight in zip(betas, out):
            assert weight == bandwidth_min(Chain(chain.alpha, row), bound).weight

    def test_uncut_chain_returns_zeros(self):
        chain = Chain([1.0, 1.0], [4.0])
        out = compile_chain(chain).solve_beta_sweep([[4.0], [9.0]], 2.0)
        assert out.tolist() == [0.0, 0.0]

    def test_input_validation(self):
        chain = random_chain(10, rng=22)
        plan = compile_chain(chain)
        bound = 2.0 * chain.max_vertex_weight()
        with pytest.raises(ValueError, match="shape"):
            plan.solve_beta_sweep([[1.0, 2.0]], bound)
        with pytest.raises(ValueError, match="at least one"):
            plan.solve_beta_sweep(np.empty((0, chain.num_edges)), bound)
        with pytest.raises(ValueError, match="finite and non-negative"):
            plan.solve_beta_sweep([[-1.0] * chain.num_edges], bound)
        with pytest.raises(InfeasibleBoundError):
            plan.solve_beta_sweep(
                [list(chain.beta)], 0.5 * chain.max_vertex_weight()
            )

    def test_verify_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "1")
        chain = random_chain(25, rng=23)
        bound = 2.0 * chain.max_vertex_weight()
        betas = [list(chain.beta), [1.5 * b for b in chain.beta]]
        out = compile_chain(chain).solve_beta_sweep(betas, bound)
        for row, weight in zip(betas, out):
            assert weight == bandwidth_min(Chain(chain.alpha, row), bound).weight


class TestPlanCache:
    def test_hit_miss_eviction(self):
        cache = PlanCache(max_plans=2)
        chains = [random_chain(20, rng=30 + i) for i in range(3)]
        first = cache.get(chains[0])
        assert cache.get(chains[0]) is first
        assert (cache.stats.hits, cache.stats.misses) == (1, 1)
        cache.get(chains[1])
        cache.get(chains[2])  # evicts chains[0]
        assert cache.stats.evictions == 1
        assert len(cache) == 2
        assert cache.get(chains[0]) is not first
        cache.clear()
        assert len(cache) == 0

    def test_rebinds_telemetry_on_hit(self):
        cache = PlanCache()
        chain = random_chain(15, rng=33)
        cache.get(chain)
        tracer, metrics = Tracer(), MetricsRegistry()
        plan = cache.get(chain, tracer=tracer, metrics=metrics)
        assert plan.tracer is tracer
        assert plan.metrics is metrics


class TestEngineSolveSweep:
    def test_matches_per_call_and_counts_cache(self):
        engine = PartitionEngine()
        chain = random_chain(70, rng=40)
        ks = bounds_for(chain, seed=40)
        weights, cuts = engine.solve_sweep(chain, ks, return_cuts=True)
        for k, weight, cut in zip(ks, weights, cuts):
            ref = bandwidth_min(chain, k)
            assert (cut, weight) == (list(ref.cut_indices), ref.weight)
        engine.solve_sweep(chain, ks[:3])
        assert engine.plans.stats.misses == 1
        assert engine.plans.stats.hits == 1

    def test_python_backend_falls_back_to_per_call(self):
        engine = PartitionEngine(backend="python")
        chain = random_chain(30, rng=41)
        ks = bounds_for(chain, count=5, seed=41)
        weights, cuts = engine.solve_sweep(chain, ks, return_cuts=True)
        assert len(engine.plans) == 0  # no plan compiled on the python path
        for k, weight, cut in zip(ks, weights, cuts):
            ref = bandwidth_min(chain, k)
            assert (cut, weight) == (list(ref.cut_indices), ref.weight)
        just_weights = engine.solve_sweep(chain, ks)
        assert list(just_weights) == list(weights)

    def test_snapshot_metrics_exports_plan_gauges(self):
        engine = PartitionEngine()
        chain = random_chain(20, rng=42)
        engine.solve_sweep(chain, bounds_for(chain, count=4, seed=42))
        metrics = engine.snapshot_metrics()
        names = {r["name"] for r in metrics.records()}
        assert "engine.plan.cache.misses" in names
        assert "engine.plan.cache.plans" in names
        assert metrics.gauge("engine.plan.cache.plans").value == 1
