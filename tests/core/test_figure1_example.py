"""The Figure-1 worked example (reconstructed).

The paper demonstrates Algorithm 2.2 "by an example in figure 1"; the
printed figure's numbers are not machine-readable in the source text, so
this reconstruction exercises the same walk-through on an equivalent
two-level tree whose greedy trace is fully hand-checkable:

       0 (w=2)
     / | | \\
    2  3 4  1 (w=3)          leaves 2,3,4 weigh 3,4,5
            / \\
           5   6             leaves 5,6 weigh 6,2

With K = 10:

* pre-leaf 1: W = 3+6+2 = 11 > 10 -> prune heaviest leaf 5, cut (1,5),
  residual 5;
* (now pre-leaf) 0: W = 2+5+3+4+5 = 19 > 10 -> prune leaf 4 (w=5,
  still 14 > 10), then merged node 1 (w=5, 9 <= 10): cuts (0,4), (0,1).

Final: 3 cuts, 4 components {0,2,3}=9, {1,6}=5, {4}=5, {5}=6 — optimal,
as the exact DP oracle confirms.
"""

import pytest

from repro.baselines.kundu_misra import processor_min_bottom_up
from repro.baselines.tree_dp import min_cuts_exact
from repro.core.pipeline import partition_tree
from repro.core.processor_min import processor_min
from repro.graphs.tree import Tree


@pytest.fixture
def figure1_tree() -> Tree:
    return Tree(
        [2, 3, 3, 4, 5, 6, 2],
        [(0, 1), (0, 2), (0, 3), (0, 4), (1, 5), (1, 6)],
        [1, 1, 1, 1, 1, 1],
    )


class TestFigure1Walkthrough:
    def test_greedy_trace(self, figure1_tree):
        result = processor_min(figure1_tree, 10)
        assert result.cut_edges == {(1, 5), (0, 4), (0, 1)}
        assert result.num_components == 4

    def test_component_weights(self, figure1_tree):
        result = processor_min(figure1_tree, 10)
        weights = sorted(figure1_tree.component_weights(result.cut_edges))
        assert weights == [5, 5, 6, 9]

    def test_optimality_vs_oracle(self, figure1_tree):
        assert min_cuts_exact(figure1_tree, 10) == 3

    def test_independent_greedy_agrees(self, figure1_tree):
        assert processor_min_bottom_up(figure1_tree, 10).num_components == 4

    def test_one_cut_insufficient(self, figure1_tree):
        # No single edge removal yields two components both <= 10.
        for edge in figure1_tree.edges():
            weights = figure1_tree.component_weights({edge})
            assert max(weights) > 10

    def test_larger_bound_merges(self, figure1_tree):
        result = processor_min(figure1_tree, 14)
        assert result.num_components == 2

    def test_full_pipeline_on_example(self, figure1_tree):
        plan = partition_tree(figure1_tree, 10)
        weights = figure1_tree.component_weights(plan.final_cut)
        assert all(w <= 10 for w in weights)
        assert plan.num_processors >= 2
