"""Unit tests for the naive recurrence (:mod:`repro.core.recurrence`)."""

import random

import pytest

from repro.core.bandwidth import bandwidth_min
from repro.core.feasibility import InfeasibleBoundError
from repro.core.recurrence import bandwidth_min_naive, hitting_set_cost_naive
from repro.graphs.chain import Chain
from repro.graphs.generators import random_chain


class TestNaiveRecurrence:
    def test_fixture_optimum(self, small_chain):
        result = bandwidth_min_naive(small_chain, 9)
        assert result.weight == 3
        assert result.is_feasible(9)

    def test_no_primes(self, small_chain):
        result = bandwidth_min_naive(small_chain, 25)
        assert result.cut_indices == []
        assert result.weight == 0.0

    def test_infeasible(self, small_chain):
        with pytest.raises(InfeasibleBoundError):
            bandwidth_min_naive(small_chain, 1)

    def test_single_prime(self):
        chain = Chain([6, 6], [4])
        result = bandwidth_min_naive(chain, 7)
        assert result.cut_indices == [0]
        assert result.weight == 4

    def test_hitting_set_cost_helper(self, small_chain):
        assert hitting_set_cost_naive(small_chain, 9) == 3

    def test_agrees_with_temp_s_version(self):
        rng = random.Random(31)
        for _ in range(40):
            chain = random_chain(rng.randint(2, 80), rng)
            bound = rng.uniform(chain.max_vertex_weight(), chain.total_weight())
            naive = bandwidth_min_naive(chain, bound)
            fast = bandwidth_min(chain, bound)
            assert naive.weight == pytest.approx(fast.weight)
            assert naive.is_feasible(bound)

    def test_agrees_without_reduction(self):
        rng = random.Random(32)
        for _ in range(15):
            chain = random_chain(rng.randint(2, 40), rng)
            bound = rng.uniform(chain.max_vertex_weight(), chain.total_weight())
            a = bandwidth_min_naive(chain, bound, apply_reduction=False).weight
            b = bandwidth_min_naive(chain, bound, apply_reduction=True).weight
            assert a == pytest.approx(b)
