"""Unit tests for :mod:`repro.core.prime_subpaths`.

The fixture chain is alpha=[4,3,5,2,6], beta=[7,1,9,2]; under K=9 its
prime subpaths are tasks [0..2], [1..3], [2..4] (see conftest).
"""

import itertools
import random

import pytest

from repro.core.feasibility import InfeasibleBoundError
from repro.core.prime_subpaths import (
    PrimeStructure,
    PrimeSubpath,
    edge_membership_intervals,
    find_prime_subpaths,
    reduce_edges,
)
from repro.graphs.chain import Chain
from repro.graphs.generators import random_chain, uniform_chain


class TestPrimeSubpath:
    def test_edge_interval(self):
        sp = PrimeSubpath(2, 5, 30.0)
        assert sp.first_edge == 2
        assert sp.last_edge == 4
        assert sp.num_tasks == 4
        assert sp.num_edges == 3

    def test_contains_edge(self):
        sp = PrimeSubpath(1, 3, 10.0)
        assert not sp.contains_edge(0)
        assert sp.contains_edge(1)
        assert sp.contains_edge(2)
        assert not sp.contains_edge(3)


class TestFindPrimeSubpaths:
    def test_fixture_primes(self, small_chain):
        primes = find_prime_subpaths(small_chain, 9)
        assert [(p.first_task, p.last_task) for p in primes] == [
            (0, 2),
            (1, 3),
            (2, 4),
        ]
        assert [p.weight for p in primes] == [12, 10, 13]

    def test_no_primes_when_bound_large(self, small_chain):
        assert find_prime_subpaths(small_chain, 20) == []
        assert find_prime_subpaths(small_chain, 100) == []

    def test_bound_just_below_total(self, small_chain):
        primes = find_prime_subpaths(small_chain, 19.5)
        assert [(p.first_task, p.last_task) for p in primes] == [(0, 4)]

    def test_infeasible_bound(self, small_chain):
        with pytest.raises(InfeasibleBoundError):
            find_prime_subpaths(small_chain, 5.9)

    def test_single_task(self, single_task_chain):
        assert find_prime_subpaths(single_task_chain, 5.0) == []

    def test_endpoints_strictly_increasing(self):
        chain = random_chain(300, 5, vertex_range=(1, 10))
        primes = find_prime_subpaths(chain, 25)
        firsts = [p.first_task for p in primes]
        lasts = [p.last_task for p in primes]
        assert firsts == sorted(set(firsts))
        assert lasts == sorted(set(lasts))

    def test_every_prime_is_critical_and_minimal(self):
        chain = random_chain(200, 8, vertex_range=(1, 10))
        bound = 30.0
        for sp in find_prime_subpaths(chain, bound):
            weight = chain.segment_weight(sp.first_task, sp.last_task)
            assert weight > bound
            # Dropping either endpoint makes it fit.
            assert chain.segment_weight(sp.first_task + 1, sp.last_task) <= bound
            assert chain.segment_weight(sp.first_task, sp.last_task - 1) <= bound

    def test_matches_exhaustive_definition(self):
        rng = random.Random(5)
        for _ in range(30):
            n = rng.randint(2, 12)
            chain = random_chain(n, rng, vertex_range=(1, 5), integer_weights=True)
            bound = float(rng.randint(int(chain.max_vertex_weight()), 15))
            # All critical subpaths by brute force.
            critical = [
                (a, b)
                for a, b in itertools.combinations(range(n + 1), 2)
                if chain.segment_weight(a, b - 1) > bound
            ]
            critical = [(a, b - 1) for a, b in critical]
            minimal = [
                (a, b)
                for a, b in critical
                if not any(
                    (a2 >= a and b2 <= b and (a2, b2) != (a, b))
                    for a2, b2 in critical
                )
            ]
            primes = find_prime_subpaths(chain, bound)
            assert [(p.first_task, p.last_task) for p in primes] == sorted(minimal)

    def test_uniform_chain_count(self):
        # Unit weights, K=3: every window of 4 tasks is critical and
        # minimal -> n - 3 primes.
        chain = uniform_chain(10)
        primes = find_prime_subpaths(chain, 3)
        assert len(primes) == 7
        assert all(p.num_tasks == 4 for p in primes)

    def test_p_bounded_by_n_minus_1(self):
        for seed in range(5):
            chain = random_chain(100, seed, vertex_range=(1, 10))
            primes = find_prime_subpaths(chain, 10.5)
            assert len(primes) <= chain.num_tasks - 1


class TestEdgeMembership:
    def test_fixture_membership(self, small_chain):
        primes = find_prime_subpaths(small_chain, 9)
        lo, hi = edge_membership_intervals(primes, small_chain.num_edges)
        # Edge 0 in P0 only; edge 1 in P0,P1; edge 2 in P1,P2; edge 3 in P2.
        assert (lo[0], hi[0]) == (0, 0)
        assert (lo[1], hi[1]) == (0, 1)
        assert (lo[2], hi[2]) == (1, 2)
        assert (lo[3], hi[3]) == (2, 2)

    def test_uncovered_edge(self):
        chain = Chain([9, 9, 1], [5, 5])
        primes = find_prime_subpaths(chain, 10)
        lo, hi = edge_membership_intervals(primes, chain.num_edges)
        # The only prime is [0..1] (edge 0); the tail pair (9, 1) fits in
        # the bound, so edge 1 belongs to no prime.
        assert (lo[0], hi[0]) == (0, 0)
        assert lo[1] > hi[1]

    def test_membership_matches_definition(self):
        rng = random.Random(17)
        for _ in range(20):
            chain = random_chain(rng.randint(2, 30), rng, vertex_range=(1, 6))
            bound = rng.uniform(chain.max_vertex_weight(), 25)
            primes = find_prime_subpaths(chain, bound)
            lo, hi = edge_membership_intervals(primes, chain.num_edges)
            for j in range(chain.num_edges):
                containing = [
                    i for i, p in enumerate(primes) if p.contains_edge(j)
                ]
                if containing:
                    assert lo[j] == containing[0]
                    assert hi[j] == containing[-1]
                    assert containing == list(range(lo[j], hi[j] + 1))
                else:
                    assert lo[j] > hi[j]


class TestReduceEdges:
    def test_keeps_lightest_per_class(self):
        # Unit vertex weights, K=4: primes are all 5-task windows; edges
        # within distance are grouped.
        chain = Chain([1] * 6, [9, 2, 5, 1, 7])
        primes = find_prime_subpaths(chain, 4)
        reduced = reduce_edges(chain, primes)
        indices = [e.index for e in reduced]
        # Edges 0 and 1 share membership {P0}? With n=6, K=4: windows of
        # 5 tasks: [0..4] and [1..5]; P0 edges 0..3, P1 edges 1..4.
        # Classes: {0}:P0, {1,2,3}:P0+P1, {4}:P1 -> keep 0, argmin(2,5,1)=3, 4.
        assert indices == [0, 3, 4]

    def test_reduction_bound(self):
        rng = random.Random(3)
        for _ in range(20):
            chain = random_chain(rng.randint(2, 200), rng)
            bound = rng.uniform(chain.max_vertex_weight(), 60)
            structure = PrimeStructure.compute(chain, bound)
            if structure.p:
                assert structure.r <= min(chain.num_edges, 2 * structure.p - 1)

    def test_no_reduction_keeps_all_covered(self, small_chain):
        primes = find_prime_subpaths(small_chain, 9)
        full = reduce_edges(small_chain, primes, apply_reduction=False)
        assert [e.index for e in full] == [0, 1, 2, 3]

    def test_gamma_and_q(self, small_chain):
        primes = find_prime_subpaths(small_chain, 9)
        reduced = reduce_edges(small_chain, primes)
        by_index = {e.index: e for e in reduced}
        assert by_index[1].gamma == -1  # inside the first prime
        assert by_index[2].gamma == 0
        assert by_index[1].q == 2

    def test_drops_uncovered(self):
        chain = Chain([9, 9, 1], [5, 5])
        primes = find_prime_subpaths(chain, 10)
        reduced = reduce_edges(chain, primes)
        assert [e.index for e in reduced] == [0]


class TestPrimeStructure:
    def test_compute(self, small_chain):
        structure = PrimeStructure.compute(small_chain, 9)
        assert structure.p == 3
        # Memberships {P0}, {P0,P1}, {P1,P2}, {P2} are all distinct.
        assert structure.r == 4
        assert structure.q_values == [1, 2, 2, 1]
        assert structure.q == pytest.approx(1.5)

    def test_mean_prime_length(self, small_chain):
        structure = PrimeStructure.compute(small_chain, 9)
        assert structure.mean_prime_length() == pytest.approx(3.0)

    def test_empty(self, small_chain):
        structure = PrimeStructure.compute(small_chain, 25)
        assert structure.p == 0
        assert structure.q == 0.0
        assert structure.mean_prime_length() == 0.0


class TestInstrumentationContracts:
    """Counter declarations and counter emissions are contract surface:
    the empirical complexity gate consumes both."""

    def test_declared_contract_counters(self):
        from repro.core.prime_subpaths import compute_prime_structure
        from repro.verify.contracts import get_contract

        assert get_contract(find_prime_subpaths).counters == (
            "prime_tasks_scanned",
            "prime_window_advances",
            "prime_candidates",
        )
        assert get_contract(compute_prime_structure).counters == (
            "prime_tasks_scanned",
            "prime_window_advances",
            "prime_candidates",
            "prime_edge_scans",
        )

    def test_reduce_edges_counts_edge_scans(self):
        from repro.instrumentation.counters import OpCounter

        chain = Chain([4, 3, 5, 2, 6], [7, 1, 9, 2])
        primes = find_prime_subpaths(chain, 9)
        counter = OpCounter()
        reduce_edges(chain, primes, counter=counter)
        assert counter.get("prime_edge_scans") == chain.num_edges

    def test_exact_counters_all_equal_chain(self):
        # Pinned counter totals on a 6-task all-equal chain at a bound
        # that keeps every window at a single task (b == a after every
        # candidate).  The sweep must do exactly one window advance per
        # task -- an extra or missing advance means the two-pointer
        # bookkeeping drifted.
        from repro.instrumentation.counters import OpCounter

        chain = Chain([5.0] * 6, [1.0] * 5)
        counter = OpCounter()
        primes = find_prime_subpaths(chain, 5.0, counter)
        assert [(p.first_task, p.last_task) for p in primes] == [
            (0, 1), (1, 2), (2, 3), (3, 4), (4, 5),
        ]
        assert counter.as_dict() == {
            "prime_tasks_scanned": 6,
            "prime_window_advances": 6,
            "prime_candidates": 5,
        }

    def test_cancellation_noise_never_yields_single_task_prime(self):
        # Floating-point regression: prefix[a+1] - prefix[a] can exceed
        # the bound even though the exact alpha[a] equals it (summation
        # noise).  Here prefix = cumsum([0.06, 0.21, 0.33]) makes the
        # last single task *look* critical at K = 0.33; the sweep must
        # restart the window at two tasks whenever b == a (not just
        # b < a), or it emits a spurious zero-edge prime (2, 2) that no
        # cut can hit.
        chain = Chain([0.06, 0.21, 0.33], [1.0, 1.0])
        primes = find_prime_subpaths(chain, 0.33)
        assert [(p.first_task, p.last_task) for p in primes] == [(1, 2)]
        assert all(p.last_task > p.first_task for p in primes)
