"""Unit tests for the combined pipeline (:mod:`repro.core.pipeline`)."""

import random

import pytest

from repro.core.bottleneck import bottleneck_min
from repro.core.pipeline import partition_chain, partition_tree
from repro.core.processor_min import processor_min
from repro.graphs.generators import random_chain, random_tree
from repro.graphs.tree import Tree


class TestPartitionTree:
    def test_no_cut_needed(self, small_tree):
        plan = partition_tree(small_tree, 30)
        assert plan.final_cut == set()
        assert plan.num_processors == 1
        assert plan.bottleneck == 0.0

    def test_final_cut_subset_of_bottleneck_cut(self):
        rng = random.Random(41)
        for _ in range(30):
            tree = random_tree(rng.randint(2, 40), rng)
            bound = rng.uniform(tree.max_vertex_weight(), tree.total_vertex_weight())
            plan = partition_tree(tree, bound)
            assert plan.final_cut <= plan.bottleneck_cut

    def test_bottleneck_value_preserved(self):
        rng = random.Random(42)
        for _ in range(30):
            tree = random_tree(rng.randint(2, 40), rng)
            bound = rng.uniform(tree.max_vertex_weight(), tree.total_vertex_weight())
            plan = partition_tree(tree, bound)
            optimal = bottleneck_min(tree, bound).bottleneck
            assert plan.bottleneck <= optimal + 1e-12

    def test_feasible_and_fewer_components(self):
        rng = random.Random(43)
        for _ in range(30):
            tree = random_tree(rng.randint(2, 40), rng)
            bound = rng.uniform(tree.max_vertex_weight(), tree.total_vertex_weight())
            plan = partition_tree(tree, bound)
            weights = tree.component_weights(plan.final_cut)
            assert all(w <= bound + 1e-9 for w in weights)
            # Never more components than the raw bottleneck cut.
            assert plan.num_processors <= len(plan.bottleneck_cut) + 1

    def test_defragmentation_happens(self):
        # A chain of light tasks with all-equal edge weights: bottleneck
        # min must cut everything (any single component of 2 exceeds K),
        # wait — choose weights so bottleneck cut over-fragments.
        tree = Tree(
            [1, 1, 1, 1, 1, 10],
            [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)],
            [5, 5, 5, 5, 1],
        )
        plan = partition_tree(tree, 11)
        # The raw bottleneck cut is {(4,5)} (weight-1 edge first) —
        # feasible already, so no defragmentation is needed here, but
        # the pipeline must not *add* components.
        raw = bottleneck_min(tree, 11)
        assert plan.num_processors <= raw.num_components

    def test_summary_mentions_counts(self, small_tree):
        plan = partition_tree(small_tree, 15)
        text = plan.summary()
        assert "processors" in text
        assert "K=15" in text

    def test_partition_object(self, small_tree):
        plan = partition_tree(small_tree, 15)
        partition = plan.partition()
        assert partition.num_processors == plan.num_processors


class TestPartitionChain:
    @pytest.mark.parametrize(
        "objective",
        ["bandwidth", "bottleneck", "processors", "bottleneck+processors"],
    )
    def test_all_objectives_feasible(self, small_chain, objective):
        result = partition_chain(small_chain, 9, objective=objective)
        assert result.is_feasible(9)

    def test_bandwidth_objective_optimal(self, small_chain):
        assert partition_chain(small_chain, 9, "bandwidth").weight == 3

    def test_processors_objective_minimal(self, small_chain):
        result = partition_chain(small_chain, 9, "processors")
        # ceil(20/9) = 3 components.
        assert result.num_components == 3

    def test_bottleneck_objective(self, small_chain):
        result = partition_chain(small_chain, 9, "bottleneck")
        cut_weights = [small_chain.edge_weight(i) for i in result.cut_indices]
        # Optimal bottleneck for K=9: cutting edges 1 and 3 gives max 2.
        assert max(cut_weights) == 2

    def test_unknown_objective(self, small_chain):
        with pytest.raises(ValueError, match="unknown objective"):
            partition_chain(small_chain, 9, "speed")

    def test_objectives_tradeoff(self):
        rng = random.Random(44)
        for _ in range(20):
            chain = random_chain(rng.randint(2, 50), rng)
            bound = rng.uniform(chain.max_vertex_weight(), chain.total_weight())
            bw = partition_chain(chain, bound, "bandwidth")
            proc = partition_chain(chain, bound, "processors")
            # Bandwidth-optimal never beats processor-optimal on count,
            # processor-optimal never beats bandwidth-optimal on weight.
            assert proc.num_components <= bw.num_components
            assert bw.weight <= proc.weight + 1e-9
