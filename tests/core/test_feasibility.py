"""Unit tests for :mod:`repro.core.feasibility`."""

import pytest

from repro.core.feasibility import (
    InfeasibleBoundError,
    PartitioningError,
    validate_bound,
)


class TestValidateBound:
    def test_returns_max_weight(self):
        assert validate_bound([1.0, 5.0, 3.0], 10.0) == 5.0

    def test_equal_bound_accepted(self):
        assert validate_bound([4.0], 4.0) == 4.0

    def test_infeasible_raises(self):
        with pytest.raises(InfeasibleBoundError) as exc:
            validate_bound([1.0, 9.0], 5.0)
        assert exc.value.bound == 5.0
        assert exc.value.max_weight == 9.0

    def test_error_message(self):
        with pytest.raises(InfeasibleBoundError, match="K=5"):
            validate_bound([9.0], 5.0)

    def test_non_positive_bound(self):
        with pytest.raises(ValueError, match="positive"):
            validate_bound([1.0], 0.0)
        with pytest.raises(ValueError, match="positive"):
            validate_bound([1.0], -2.0)

    def test_exception_hierarchy(self):
        assert issubclass(InfeasibleBoundError, PartitioningError)
        assert issubclass(PartitioningError, Exception)
