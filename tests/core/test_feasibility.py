"""Unit tests for :mod:`repro.core.feasibility`."""

import pytest

from repro.core.feasibility import (
    InfeasibleBoundError,
    PartitioningError,
    validate_bound,
)


class TestValidateBound:
    def test_returns_max_weight(self):
        assert validate_bound([1.0, 5.0, 3.0], 10.0) == 5.0

    def test_equal_bound_accepted(self):
        assert validate_bound([4.0], 4.0) == 4.0

    def test_infeasible_raises(self):
        with pytest.raises(InfeasibleBoundError) as exc:
            validate_bound([1.0, 9.0], 5.0)
        assert exc.value.bound == 5.0
        assert exc.value.max_weight == 9.0

    def test_error_message(self):
        with pytest.raises(InfeasibleBoundError, match="K=5"):
            validate_bound([9.0], 5.0)

    def test_non_positive_bound(self):
        with pytest.raises(ValueError, match="positive"):
            validate_bound([1.0], 0.0)
        with pytest.raises(ValueError, match="positive"):
            validate_bound([1.0], -2.0)

    def test_exception_hierarchy(self):
        assert issubclass(InfeasibleBoundError, PartitioningError)
        assert issubclass(PartitioningError, Exception)


class TestSolverEdgeCases:
    """Feasibility boundaries exercised through the actual solvers."""

    def test_single_vertex_chain(self):
        from repro.core.bandwidth import bandwidth_min
        from repro.graphs.chain import Chain

        chain = Chain([3.0], [])
        result = bandwidth_min(chain, 3.0)
        assert result.cut_indices == []
        assert result.weight == 0.0
        assert result.num_components == 1

    def test_single_vertex_tree(self):
        from repro.core.bottleneck import bottleneck_min
        from repro.core.processor_min import processor_min
        from repro.graphs.tree import Tree

        tree = Tree([5.0], [])
        assert not bottleneck_min(tree, 5.0).cut_edges
        assert processor_min(tree, 5.0).num_components == 1

    def test_bound_below_max_weight_raises_through_solvers(self):
        from repro.core.bandwidth import bandwidth_min
        from repro.core.bottleneck import bottleneck_min
        from repro.core.processor_min import processor_min
        from repro.graphs.chain import Chain
        from repro.graphs.tree import Tree

        chain = Chain([1.0, 9.0, 1.0], [1.0, 1.0])
        with pytest.raises(InfeasibleBoundError) as exc:
            bandwidth_min(chain, 5.0)
        assert exc.value.bound == 5.0
        assert exc.value.max_weight == 9.0

        tree = Tree([1.0, 9.0, 1.0], [(0, 1), (1, 2)], [1.0, 1.0])
        for solver in (bottleneck_min, processor_min):
            with pytest.raises(InfeasibleBoundError):
                solver(tree, 5.0)

    def test_zero_weight_edges_are_free_cuts(self):
        from repro.core.bandwidth import bandwidth_min
        from repro.graphs.chain import Chain

        chain = Chain([4.0, 4.0, 4.0], [0.0, 0.0])
        result = bandwidth_min(chain, 4.0)
        assert result.weight == 0.0
        assert chain.is_feasible_cut(result.cut_indices, 4.0)

    def test_zero_weight_vertices_rejected_by_chain(self):
        from repro.graphs.chain import Chain

        with pytest.raises(ValueError, match="non-positive weight"):
            Chain([0.0, 5.0], [2.0])

    def test_exactly_tight_bound_stays_feasible(self):
        """Regression: K equal to the max vertex weight must never
        produce an infeasible cut, even when prefix-difference rounding
        makes the heaviest task look critical on its own (a single task
        is never a critical subpath)."""
        from repro.core.bandwidth import bandwidth_min
        from repro.graphs.generators import random_chain

        chain = random_chain(40, rng=13)
        bound = chain.max_vertex_weight()
        for backend in ("python", "numpy"):
            result = bandwidth_min(chain, bound, backend=backend)
            assert chain.is_feasible_cut(result.cut_indices, bound), backend
