"""Unit tests for Algorithm 4.1 (:mod:`repro.core.bandwidth`)."""

import random

import pytest

from repro.core.bandwidth import ChainCutResult, bandwidth_min, bandwidth_stats
from repro.core.feasibility import InfeasibleBoundError
from repro.graphs.chain import Chain
from repro.graphs.generators import random_chain, uniform_chain


class TestKnownInstances:
    def test_fixture_optimum(self, small_chain):
        result = bandwidth_min(small_chain, 9)
        assert result.weight == 3
        assert result.cut_indices == [1, 3]
        assert result.is_feasible(9)

    def test_whole_chain_fits(self, small_chain):
        result = bandwidth_min(small_chain, 20)
        assert result.cut_indices == []
        assert result.weight == 0.0
        assert result.num_components == 1

    def test_bound_exactly_total(self, small_chain):
        assert bandwidth_min(small_chain, 20.0).cut_indices == []

    def test_all_singletons_required(self):
        chain = Chain([5, 5, 5], [2, 3])
        result = bandwidth_min(chain, 5)
        assert result.cut_indices == [0, 1]
        assert result.weight == 5

    def test_single_task(self, single_task_chain):
        result = bandwidth_min(single_task_chain, 5.0)
        assert result.cut_indices == []

    def test_two_tasks_split(self):
        chain = Chain([4, 4], [11])
        result = bandwidth_min(chain, 6)
        assert result.cut_indices == [0]
        assert result.weight == 11

    def test_infeasible(self, small_chain):
        with pytest.raises(InfeasibleBoundError):
            bandwidth_min(small_chain, 5)

    def test_prefers_light_edges(self):
        # Identical structure, one cheap escape edge.
        chain = Chain([3, 3, 3, 3], [100, 1, 100])
        result = bandwidth_min(chain, 6)
        assert result.cut_indices == [1]
        assert result.weight == 1

    def test_uniform_worst_case(self):
        chain = uniform_chain(12)
        result = bandwidth_min(chain, 3)
        # Must cut at least every 3 tasks: ceil(12/3) - 1 = 3 cuts.
        assert len(result.cut_indices) == 3
        assert result.is_feasible(3)

    def test_zero_weight_edges(self):
        chain = Chain([4, 4, 4], [0.0, 0.0])
        result = bandwidth_min(chain, 4)
        assert result.weight == 0.0
        assert result.is_feasible(4)


class TestResultObject:
    def test_component_weights(self, small_chain):
        result = bandwidth_min(small_chain, 9)
        assert result.component_weights() == [7, 7, 6]

    def test_blocks(self, small_chain):
        result = bandwidth_min(small_chain, 9)
        assert result.blocks() == [(0, 1), (2, 3), (4, 4)]

    def test_as_cut(self, small_chain):
        cut = bandwidth_min(small_chain, 9).as_cut()
        assert cut.bandwidth() == 3
        assert cut.is_feasible(9)

    def test_stats_none_by_default(self, small_chain):
        assert bandwidth_min(small_chain, 9).stats is None


class TestStats:
    def test_stats_populated(self, small_chain):
        stats = bandwidth_stats(small_chain, 9)
        assert stats.n == 5
        assert stats.p == 3
        assert stats.r == 4
        assert stats.q == pytest.approx(1.5)
        assert stats.max_temp_s_len >= 1

    def test_stats_empty_when_no_primes(self, small_chain):
        stats = bandwidth_stats(small_chain, 25)
        assert stats.p == 0
        assert stats.p_log_q == 0.0

    def test_p_log_q_zero_when_q_one(self):
        # Primes [0..1] and [1..2] each own exactly one edge: q = 1, so
        # the paper's cost measure p log q collapses to zero.
        chain = Chain([5, 5, 5], [2, 3])
        stats = bandwidth_stats(chain, 5)
        assert stats.p == 2
        assert stats.q == pytest.approx(1.0)
        assert stats.p_log_q == 0.0


class TestVariants:
    @pytest.mark.parametrize("search", ["binary", "linear"])
    @pytest.mark.parametrize("apply_reduction", [True, False])
    def test_variants_agree_on_fixture(self, small_chain, search, apply_reduction):
        result = bandwidth_min(
            small_chain, 9, search=search, apply_reduction=apply_reduction
        )
        assert result.weight == 3

    def test_variants_agree_randomized(self):
        rng = random.Random(123)
        for _ in range(25):
            chain = random_chain(rng.randint(2, 60), rng)
            bound = rng.uniform(chain.max_vertex_weight(), chain.total_weight())
            weights = {
                bandwidth_min(chain, bound, search=s, apply_reduction=r).weight
                for s in ("binary", "linear")
                for r in (True, False)
            }
            assert len({round(w, 9) for w in weights}) == 1

    def test_cut_edges_within_range(self):
        rng = random.Random(7)
        for _ in range(20):
            chain = random_chain(rng.randint(2, 50), rng)
            bound = rng.uniform(chain.max_vertex_weight(), chain.total_weight())
            result = bandwidth_min(chain, bound)
            assert all(0 <= i < chain.num_edges for i in result.cut_indices)
            assert result.cut_indices == sorted(set(result.cut_indices))
            assert result.weight == pytest.approx(
                chain.cut_weight(result.cut_indices)
            )


class TestFeasibilityAlways:
    def test_random_instances_feasible(self):
        rng = random.Random(99)
        for _ in range(50):
            chain = random_chain(rng.randint(1, 80), rng)
            bound = rng.uniform(chain.max_vertex_weight(), chain.total_weight() + 1)
            result = bandwidth_min(chain, bound)
            assert result.is_feasible(bound)

    def test_tight_bound_equals_max_weight(self):
        chain = Chain([6, 2, 6, 2], [1, 1, 1])
        result = bandwidth_min(chain, 6)
        assert result.is_feasible(6)


class TestBoundaryBounds:
    """Boundary cases exposed by mutation analysis: a bound that equals
    a critical subpath weight exactly, the singleton chain, and the
    all-equal chain where every comparison is a tie."""

    def test_bound_exactly_at_prime_weight(self, small_chain):
        # Primes under K=9 weigh 12, 10 and 13.  At K equal to a prime's
        # weight the window becomes feasible (criticality is strict), so
        # the prime disappears and the optimum can only improve.
        from repro.baselines.exact_dp import bandwidth_min_dp

        for bound in (10, 12, 13):
            result = bandwidth_min(small_chain, bound)
            assert result.is_feasible(bound)
            assert result.weight == bandwidth_min_dp(small_chain, bound).weight

    def test_singleton_chain(self):
        chain = Chain([5.0], [])
        for bound in (5.0, 7.5):
            result = bandwidth_min(chain, bound)
            assert result.cut_indices == []
            assert result.weight == 0.0
        with pytest.raises(InfeasibleBoundError):
            bandwidth_min(chain, 4.9)

    def test_all_equal_weights(self):
        # 12 unit tasks, unit edges: K=3 forces a cut at least every
        # three tasks; the optimum uses exactly three cuts.
        chain = uniform_chain(12)
        result = bandwidth_min(chain, 3.0)
        assert result.is_feasible(3.0)
        assert result.weight == 3.0

    def test_declared_contract_counters(self):
        from repro.verify.contracts import get_contract

        contract = get_contract(bandwidth_min)
        assert contract is not None
        assert contract.counters == (
            "prime_tasks_scanned",
            "prime_window_advances",
            "prime_candidates",
            "prime_edge_scans",
            "search_steps",
        )
