"""Unit tests for Algorithm 2.2 (:mod:`repro.core.processor_min`)."""

import random

import pytest

from repro.core.feasibility import InfeasibleBoundError
from repro.core.processor_min import (
    min_processors,
    processor_min,
    processors_lower_bound,
)
from repro.graphs.generators import caterpillar_tree, random_star, random_tree
from repro.graphs.tree import Tree


class TestKnownInstances:
    def test_whole_tree_fits(self, small_tree):
        result = processor_min(small_tree, 28)
        assert result.cut_edges == set()
        assert result.num_components == 1

    def test_fixture_bound_15(self, small_tree):
        result = processor_min(small_tree, 15)
        assert result.is_feasible(15)
        # ceil(28/15) = 2 components suffice and are necessary.
        assert result.num_components == 2

    def test_single_vertex(self):
        result = processor_min(Tree([3.0], []), 5)
        assert result.num_components == 1

    def test_two_vertices_fit(self):
        tree = Tree([3, 4], [(0, 1)])
        assert processor_min(tree, 7).num_components == 1
        assert processor_min(tree, 6).num_components == 2

    def test_infeasible(self, small_tree):
        with pytest.raises(InfeasibleBoundError):
            processor_min(small_tree, 5)

    def test_star_prunes_heaviest(self, star_tree):
        # Leaves weigh 2..6, centre 0, total 20.  K=14: cutting the
        # single heaviest leaf (6) leaves 14 — one cut.
        result = processor_min(star_tree, 14)
        assert len(result.cut_edges) == 1
        assert result.cut_edges == {(0, 5)}  # leaf vertex 5 has weight 6

    def test_star_multiple_prunes(self, star_tree):
        # K=9: keep <= 9: prune 6, then 5 (20 -> 14 -> 9): two cuts.
        result = processor_min(star_tree, 9)
        assert len(result.cut_edges) == 2
        assert result.is_feasible(9)

    def test_path_tree(self):
        tree = Tree([4, 4, 4, 4], [(0, 1), (1, 2), (2, 3)])
        result = processor_min(tree, 8)
        assert result.num_components == 2
        assert result.is_feasible(8)


class TestOptimality:
    def test_matches_lower_bound_when_tight(self):
        # Uniform caterpillar where packing is perfect.
        tree = Tree([1] * 8, [(i, i + 1) for i in range(7)])
        assert min_processors(tree, 4) == 2
        assert min_processors(tree, 2) == 4

    def test_never_below_packing_bound(self):
        rng = random.Random(21)
        for _ in range(30):
            tree = random_tree(rng.randint(1, 40), rng)
            bound = rng.uniform(tree.max_vertex_weight(), tree.total_vertex_weight() + 1)
            k = min_processors(tree, bound)
            assert k >= processors_lower_bound(tree, bound)

    def test_root_invariant_component_count(self):
        # The minimized |S| must not depend on the processing root.
        rng = random.Random(22)
        for _ in range(20):
            tree = random_tree(rng.randint(2, 25), rng, integer_weights=True)
            bound = float(
                rng.randint(
                    int(tree.max_vertex_weight()),
                    int(tree.total_vertex_weight()) + 1,
                )
            )
            counts = {
                processor_min(tree, bound, root=r).num_components
                for r in range(0, tree.num_vertices, max(1, tree.num_vertices // 4))
            }
            assert len(counts) == 1

    def test_caterpillar(self):
        tree = caterpillar_tree(5, 2, rng=3, vertex_range=(1, 5))
        bound = 2.5 * tree.max_vertex_weight()
        result = processor_min(tree, bound)
        assert result.is_feasible(bound)

    def test_feasibility_random(self):
        rng = random.Random(23)
        for _ in range(40):
            tree = random_tree(rng.randint(1, 60), rng)
            bound = rng.uniform(tree.max_vertex_weight(), tree.total_vertex_weight())
            assert processor_min(tree, bound).is_feasible(bound)


class TestLowerBoundHelper:
    def test_exact_division(self):
        tree = Tree([2, 2, 2], [(0, 1), (1, 2)])
        assert processors_lower_bound(tree, 3) == 2
        assert processors_lower_bound(tree, 6) == 1
        assert processors_lower_bound(tree, 100) == 1

    def test_float_tolerance(self):
        tree = Tree([1, 1, 1], [(0, 1), (1, 2)])
        # 3 / 1.5 = exactly 2 — no spurious ceil to 3.
        assert processors_lower_bound(tree, 1.5) == 2
