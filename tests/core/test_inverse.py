"""Unit tests for the inverse problems (:mod:`repro.core.inverse`)."""

import random

import pytest

from repro.baselines.tree_dp import min_components_exact
from repro.core.inverse import (
    min_bound_for_tree,
    partition_chain_for_processors,
    tree_pareto_frontier,
)
from repro.core.processor_min import min_processors
from repro.graphs.chain import Chain
from repro.graphs.generators import random_chain, random_tree
from repro.graphs.tree import Tree


class TestChainBudget:
    def test_single_processor(self, small_chain):
        plan = partition_chain_for_processors(small_chain, 1)
        assert plan.bound == small_chain.total_weight()
        assert plan.bandwidth_cut.cut_indices == []

    def test_fixture_budget_three(self, small_chain):
        plan = partition_chain_for_processors(small_chain, 3)
        # Best 3-way bottleneck for [4,3,5,2,6] is 7: [4,3],[5,2],[6].
        assert plan.bound == 7
        assert plan.bandwidth_cut.is_feasible(plan.bound)

    def test_budget_bound_monotone(self):
        rng = random.Random(161)
        chain = random_chain(50, rng)
        bounds = [
            partition_chain_for_processors(chain, m).bound
            for m in range(1, 10)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(bounds, bounds[1:]))

    def test_rejects_zero(self, small_chain):
        with pytest.raises(ValueError):
            partition_chain_for_processors(small_chain, 0)

    def test_cut_respects_bound(self):
        rng = random.Random(162)
        for _ in range(20):
            chain = random_chain(rng.randint(2, 40), rng)
            m = rng.randint(1, chain.num_tasks)
            plan = partition_chain_for_processors(chain, m)
            assert plan.bandwidth_cut.is_feasible(plan.bound + 1e-9)


class TestTreeBound:
    def test_one_processor_needs_total(self, small_tree):
        assert min_bound_for_tree(small_tree, 1) == pytest.approx(28)

    def test_enough_processors_needs_max_vertex(self, small_tree):
        bound = min_bound_for_tree(small_tree, 7)
        assert bound == pytest.approx(small_tree.max_vertex_weight())

    def test_bound_is_achievable_and_tight(self):
        rng = random.Random(163)
        for _ in range(25):
            tree = random_tree(rng.randint(1, 20), rng, integer_weights=True)
            m = rng.randint(1, tree.num_vertices)
            bound = min_bound_for_tree(tree, m)
            assert min_processors(tree, bound + 1e-6) <= m
            if bound > tree.max_vertex_weight() + 1e-9:
                # Any meaningfully smaller bound needs more processors.
                assert min_processors(tree, bound - 1e-6 * bound - 1e-9) > m

    def test_matches_exact_search_small(self):
        # Candidate bounds are component weights; check against a scan
        # over all distinct subset sums via the exact DP.
        tree = Tree([3, 1, 4, 1, 5], [(0, 1), (1, 2), (2, 3), (3, 4)])
        for m in range(1, 6):
            bound = min_bound_for_tree(tree, m)
            assert min_components_exact(tree, bound + 1e-9) <= m

    def test_rejects_zero(self, small_tree):
        with pytest.raises(ValueError):
            min_bound_for_tree(small_tree, 0)


class TestParetoFrontier:
    def test_monotone_frontier(self, medium_tree):
        rows = tree_pareto_frontier(medium_tree, 8)
        assert len(rows) == 8
        bounds = [row["bound"] for row in rows]
        assert all(a >= b - 1e-9 for a, b in zip(bounds, bounds[1:]))
        assert rows[0]["components"] == 1
        for row in rows:
            assert row["components"] <= row["processors"]

    def test_frontier_fields(self, small_tree):
        rows = tree_pareto_frontier(small_tree, 3)
        for row in rows:
            assert {"processors", "bound", "components", "bottleneck",
                    "bandwidth"} <= set(row)
