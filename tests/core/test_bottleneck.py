"""Unit tests for Algorithm 2.1 (:mod:`repro.core.bottleneck`)."""

import random

import pytest

from repro.core.bottleneck import (
    TreeCutResult,
    bottleneck_min,
    bottleneck_min_naive,
)
from repro.core.feasibility import InfeasibleBoundError
from repro.graphs.generators import random_tree
from repro.graphs.tree import Tree


class TestKnownInstances:
    def test_no_cut_needed(self, small_tree):
        result = bottleneck_min(small_tree, 30)
        assert result.cut_edges == set()
        assert result.bottleneck == 0.0
        assert result.num_components == 1

    def test_fixture_bound_15(self, small_tree):
        # Total weight 28 > 15, so some cut is needed.  The lightest
        # edges go first: cutting (0,1)=10 leaves components 12 and 16;
        # that's enough (both <= 15)?  16 > 15, so (0,2)=20 also joins.
        result = bottleneck_min(small_tree, 15)
        assert result.cut_edges == {(0, 1), (0, 2)}
        assert result.bottleneck == 20
        assert result.is_feasible(15)

    def test_fixture_bound_13(self, small_tree):
        # Cutting the two lightest edges leaves {1,3,4}=12, {0}=3,
        # {2,5,6}=13 — all within the bound.
        result = bottleneck_min(small_tree, 13)
        assert result.is_feasible(13)
        weights = sorted(
            small_tree.edge_weight(u, v) for u, v in result.cut_edges
        )
        assert weights == [10, 20]

    def test_fixture_bound_12(self, small_tree):
        # At K=12 the component {2,5,6}=13 no longer fits; it only breaks
        # once edge (2,5) of weight 50 joins the cut, and every lighter
        # edge precedes it in the greedy prefix.
        result = bottleneck_min(small_tree, 12)
        assert result.is_feasible(12)
        assert result.bottleneck == 50
        assert len(result.cut_edges) == 5

    def test_single_vertex(self):
        tree = Tree([4.0], [])
        result = bottleneck_min(tree, 4.0)
        assert result.cut_edges == set()

    def test_infeasible(self, small_tree):
        with pytest.raises(InfeasibleBoundError):
            bottleneck_min(small_tree, 6.5)

    def test_star_cuts_heaviest_leaves_last(self, star_tree):
        # Star leaves 2,3,4,5,6 with edges 10..50; total 20.
        result = bottleneck_min(star_tree, 11)
        assert result.is_feasible(11)

    def test_chain_shaped_tree(self):
        tree = Tree([5, 5, 5], [(0, 1), (1, 2)], [3, 7])
        result = bottleneck_min(tree, 10)
        assert result.cut_edges == {(0, 1)}
        assert result.bottleneck == 3


class TestNaiveAgreement:
    def test_identical_outputs_randomized(self):
        rng = random.Random(8)
        for _ in range(40):
            tree = random_tree(rng.randint(1, 40), rng)
            bound = rng.uniform(tree.max_vertex_weight(), tree.total_vertex_weight() + 1)
            fast = bottleneck_min(tree, bound)
            naive = bottleneck_min_naive(tree, bound)
            assert fast.cut_edges == naive.cut_edges
            assert fast.bottleneck == naive.bottleneck

    def test_identical_with_ties(self):
        rng = random.Random(9)
        for _ in range(25):
            tree = random_tree(
                rng.randint(2, 25), rng, edge_range=(1, 3), integer_weights=True
            )
            bound = float(rng.randint(int(tree.max_vertex_weight()),
                                      int(tree.total_vertex_weight())))
            assert (
                bottleneck_min(tree, bound).cut_edges
                == bottleneck_min_naive(tree, bound).cut_edges
            )


class TestGreedyPrefixProperty:
    def test_cut_is_prefix_of_sorted_order(self):
        rng = random.Random(10)
        for _ in range(25):
            tree = random_tree(rng.randint(2, 30), rng)
            bound = rng.uniform(tree.max_vertex_weight(), tree.total_vertex_weight())
            result = bottleneck_min(tree, bound)
            ordered = sorted(
                tree.weighted_edges(), key=lambda item: (item[1], item[0])
            )
            prefix = {edge for edge, _w in ordered[: len(result.cut_edges)]}
            assert result.cut_edges == prefix

    def test_bottleneck_is_max_cut_weight(self):
        rng = random.Random(11)
        for _ in range(25):
            tree = random_tree(rng.randint(2, 30), rng)
            bound = rng.uniform(tree.max_vertex_weight(), tree.total_vertex_weight())
            result = bottleneck_min(tree, bound)
            if result.cut_edges:
                assert result.bottleneck == max(
                    tree.edge_weight(u, v) for u, v in result.cut_edges
                )
            else:
                assert result.bottleneck == 0.0


class TestResultObject:
    def test_partition(self, small_tree):
        result = bottleneck_min(small_tree, 15)
        partition = result.partition()
        assert partition.num_processors == result.num_components
        assert partition.satisfies_bound(15)

    def test_as_cut(self, small_tree):
        result = bottleneck_min(small_tree, 15)
        assert result.as_cut().bottleneck() == result.bottleneck
