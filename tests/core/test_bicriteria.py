"""Unit tests for :mod:`repro.core.bicriteria`."""

import random
from itertools import combinations

import pytest

from repro.core.bicriteria import lexicographic_chain_partition
from repro.core.feasibility import InfeasibleBoundError
from repro.graphs.chain import Chain
from repro.graphs.generators import random_chain


def brute_force_lexicographic(chain: Chain, bound: float):
    """(B*, min bandwidth among cuts with max edge <= B*)."""
    n = chain.num_tasks
    feasible = []
    for r in range(n):
        for subset in combinations(range(n - 1), r):
            if chain.is_feasible_cut(subset, bound):
                feasible.append(subset)
    assert feasible
    best_bottleneck = min(
        max((chain.edge_weight(i) for i in cut), default=0.0)
        for cut in feasible
    )
    best_bandwidth = min(
        chain.cut_weight(cut)
        for cut in feasible
        if max((chain.edge_weight(i) for i in cut), default=0.0)
        <= best_bottleneck + 1e-12
    )
    return best_bottleneck, best_bandwidth


class TestLexicographic:
    def test_fixture(self, small_chain):
        result = lexicographic_chain_partition(small_chain, 9)
        # For K=9 the optimal bottleneck is 2 (cut edges 1 and 3), and
        # that cut is also the bandwidth optimum among max<=2 cuts.
        assert result.bottleneck == 2
        assert result.cut_indices == [1, 3]
        assert result.bandwidth == 3

    def test_no_cut_needed(self, small_chain):
        result = lexicographic_chain_partition(small_chain, 25)
        assert result.bottleneck == 0.0
        assert result.cut_indices == []

    def test_infeasible(self, small_chain):
        with pytest.raises(InfeasibleBoundError):
            lexicographic_chain_partition(small_chain, 3)

    def test_bottleneck_can_cost_bandwidth(self):
        # Cutting once at weight 10 is the bandwidth optimum; the
        # bottleneck optimum prefers two weight-6 cuts (max 6 < 10).
        chain = Chain([4, 4, 4], [6, 6])
        # total 12, K=8: need >= 1 cut; single cuts: edge0 -> blocks
        # 4, 8 ok (max 6); edge1 -> 8, 4 ok.
        result = lexicographic_chain_partition(chain, 8)
        assert result.bottleneck == 6
        assert result.bandwidth == 6  # one cut suffices

    def test_heavy_edge_avoided_even_at_cost(self):
        # The bandwidth optimum would cut the single heavy edge (9);
        # lexicographic forces two lighter cuts (max 5, total 10).
        chain = Chain([3, 3, 3, 3], [5, 9, 5])
        # K=6: feasible cuts: {1} (blocks 6,6) max 9 total 9;
        # {0,1} blocks 3,3,6 max 9; {0,2}: 3,6,3 max 5 total 10; ...
        result = lexicographic_chain_partition(chain, 6)
        assert result.bottleneck == 5
        assert result.cut_indices == [0, 2]
        assert result.bandwidth == 10

    def test_matches_brute_force(self):
        rng = random.Random(171)
        for _ in range(60):
            chain = random_chain(
                rng.randint(1, 12), rng, vertex_range=(1, 6),
                edge_range=(1, 9), integer_weights=True,
            )
            bound = float(
                rng.randint(
                    int(chain.max_vertex_weight()),
                    int(chain.total_weight()) + 1,
                )
            )
            result = lexicographic_chain_partition(chain, bound)
            b_star, bw_star = brute_force_lexicographic(chain, bound)
            assert result.bottleneck == pytest.approx(b_star)
            assert result.bandwidth == pytest.approx(bw_star)
            assert result.cut.is_feasible(bound)
            if result.cut_indices:
                assert max(
                    chain.edge_weight(i) for i in result.cut_indices
                ) <= b_star + 1e-12

    def test_bandwidth_never_better_than_unrestricted(self):
        from repro.core.bandwidth import bandwidth_min

        rng = random.Random(172)
        for _ in range(30):
            chain = random_chain(rng.randint(2, 40), rng)
            bound = rng.uniform(chain.max_vertex_weight(), chain.total_weight())
            lex = lexicographic_chain_partition(chain, bound)
            free = bandwidth_min(chain, bound)
            assert lex.bandwidth >= free.weight - 1e-9
