"""Unit tests for ring partitioning (:mod:`repro.core.ring`,
:mod:`repro.graphs.ring`)."""

import random
from itertools import combinations

import pytest

from repro.core.feasibility import InfeasibleBoundError
from repro.core.ring import ring_bandwidth_min
from repro.graphs.chain import Chain
from repro.graphs.ring import Ring


@pytest.fixture
def small_ring() -> Ring:
    """alpha = [4, 3, 5, 2, 6] on a cycle; beta = [7, 1, 9, 2, 3]."""
    return Ring([4, 3, 5, 2, 6], [7, 1, 9, 2, 3])


def brute_force_ring(ring: Ring, bound: float):
    best = None
    n = ring.num_edges
    for r in range(n + 1):
        for subset in combinations(range(n), r):
            if ring.is_feasible_cut(subset, bound):
                w = ring.cut_weight(subset)
                if best is None or w < best:
                    best = w
    return best


class TestRingStructure:
    def test_basic(self, small_ring):
        assert small_ring.num_tasks == 5
        assert small_ring.num_edges == 5
        assert small_ring.total_weight() == 20

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            Ring([1, 2], [1, 2])

    def test_rejects_mismatched_beta(self):
        with pytest.raises(ValueError):
            Ring([1, 2, 3], [1, 2])

    def test_arc_weight_wrapping(self, small_ring):
        assert small_ring.arc_weight(0, 5) == 20
        assert small_ring.arc_weight(3, 3) == 2 + 6 + 4  # tasks 3,4,0
        assert small_ring.arc_weight(4, 2) == 6 + 4

    def test_arc_weight_validation(self, small_ring):
        with pytest.raises(ValueError):
            small_ring.arc_weight(0, 0)
        with pytest.raises(ValueError):
            small_ring.arc_weight(0, 6)

    def test_cut_components_empty(self, small_ring):
        assert small_ring.cut_components([]) == [(0, 5)]

    def test_cut_components_single(self, small_ring):
        # Cutting edge 1 (between tasks 1 and 2) leaves one arc of all
        # 5 tasks starting at task 2.
        assert small_ring.cut_components([1]) == [(2, 5)]

    def test_cut_components_two(self, small_ring):
        arcs = small_ring.cut_components([1, 3])
        assert sorted(arcs) == [(2, 2), (4, 3)]
        assert sorted(small_ring.component_weights([1, 3])) == [7, 13]

    def test_feasibility(self, small_ring):
        assert small_ring.is_feasible_cut([1, 3], 13)
        assert not small_ring.is_feasible_cut([1, 3], 12)
        assert small_ring.is_feasible_cut([], 20)

    def test_open_at(self, small_ring):
        chain = small_ring.open_at(4)  # cut edge between tasks 4 and 0
        assert chain == Chain([4, 3, 5, 2, 6], [7, 1, 9, 2])

    def test_open_at_rotation(self, small_ring):
        chain = small_ring.open_at(1)
        assert chain.alpha == [5, 2, 6, 4, 3]
        assert chain.beta == [9, 2, 3, 7]

    def test_edge_mapping_round_trip(self, small_ring):
        for opened in range(5):
            for chain_edge in range(4):
                ring_edge = small_ring.chain_edge_to_ring_edge(opened, chain_edge)
                assert 0 <= ring_edge < 5
                assert ring_edge != opened

    def test_to_task_graph(self, small_ring):
        graph = small_ring.to_task_graph()
        assert graph.num_edges == 5
        assert all(graph.degree(v) == 2 for v in range(5))


class TestRingBandwidthMin:
    def test_whole_ring_fits(self, small_ring):
        result = ring_bandwidth_min(small_ring, 20)
        assert result.cut_indices == []
        assert result.weight == 0.0

    def test_fixture_optimum(self, small_ring):
        result = ring_bandwidth_min(small_ring, 13)
        assert result.is_feasible(13)
        assert result.weight == brute_force_ring(small_ring, 13)

    def test_needs_at_least_two_cuts(self, small_ring):
        result = ring_bandwidth_min(small_ring, 19)
        assert len(result.cut_indices) >= 2

    def test_infeasible(self, small_ring):
        with pytest.raises(InfeasibleBoundError):
            ring_bandwidth_min(small_ring, 5)

    def test_matches_brute_force_randomized(self):
        rng = random.Random(77)
        for _ in range(60):
            n = rng.randint(3, 10)
            alpha = [float(rng.randint(1, 6)) for _ in range(n)]
            beta = [float(rng.randint(1, 9)) for _ in range(n)]
            ring = Ring(alpha, beta)
            bound = float(rng.randint(int(max(alpha)), int(sum(alpha)) + 2))
            result = ring_bandwidth_min(ring, bound)
            assert result.is_feasible(bound)
            assert result.weight == pytest.approx(brute_force_ring(ring, bound))

    def test_large_ring_feasible(self):
        rng = random.Random(78)
        alpha = [rng.uniform(1, 10) for _ in range(2000)]
        beta = [rng.uniform(1, 100) for _ in range(2000)]
        ring = Ring(alpha, beta)
        bound = 4.0 * max(alpha)
        result = ring_bandwidth_min(ring, bound)
        assert result.is_feasible(bound)
        assert result.weight == pytest.approx(
            ring.cut_weight(result.cut_indices)
        )

    def test_candidate_count_bounded_by_arc(self):
        rng = random.Random(79)
        alpha = [rng.uniform(1, 10) for _ in range(500)]
        beta = [rng.uniform(1, 10) for _ in range(500)]
        ring = Ring(alpha, beta)
        result = ring_bandwidth_min(ring, 3.0 * max(alpha))
        # Expected candidates ~ 2K/(w1+w2) ~ 2*30/11; generous cap:
        assert result.candidates_tried <= 20
