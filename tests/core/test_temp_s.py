"""Unit tests for the TEMP_S queue (:mod:`repro.core.temp_s`)."""

import pytest

from repro.core.temp_s import Row, SolutionNode, TempSQueue, solution_weight
from repro.instrumentation.counters import OpCounter


def node(edge: int, weight: float, prev=None) -> SolutionNode:
    return SolutionNode(edge, weight, prev)


class TestSolutionNode:
    def test_single(self):
        sol = node(3, 5.0)
        assert sol.weight == 5.0
        assert sol.edge_indices() == [3]

    def test_chain_accumulates(self):
        sol = node(7, 2.0, node(3, 5.0))
        assert sol.weight == 7.0
        assert sol.edge_indices() == [3, 7]

    def test_solution_weight_none(self):
        assert solution_weight(None) == 0.0
        assert solution_weight(node(0, 4.0)) == 4.0

    def test_shared_prefix(self):
        base = node(1, 1.0)
        a = node(5, 2.0, base)
        b = node(6, 3.0, base)
        assert a.edge_indices() == [1, 5]
        assert b.edge_indices() == [1, 6]


class TestQueueBasics:
    def test_empty(self):
        q = TempSQueue()
        assert len(q) == 0
        assert not q
        assert q.covered_range() is None
        with pytest.raises(IndexError):
            q.top
        with pytest.raises(IndexError):
            q.bottom

    def test_invalid_search(self):
        with pytest.raises(ValueError):
            TempSQueue(search="ternary")

    def test_first_update_creates_row(self):
        q = TempSQueue()
        q.update(5.0, node(0, 5.0), 0, 2)
        assert len(q) == 1
        assert q.covered_range() == (0, 2)
        assert q.top.w == 5.0


class TestUpdateMerging:
    def test_smaller_w_merges_everything(self):
        q = TempSQueue()
        q.update(5.0, node(0, 5.0), 0, 0)
        q.update(3.0, node(1, 3.0), 0, 1)
        assert len(q) == 1
        assert q.top.w == 3.0
        assert q.covered_range() == (0, 1)

    def test_larger_w_appends_new_subpaths_only(self):
        q = TempSQueue()
        q.update(3.0, node(0, 3.0), 0, 0)
        q.update(5.0, node(1, 5.0), 0, 1)
        assert len(q) == 2
        rows = list(q.rows())
        assert (rows[0].lo, rows[0].hi, rows[0].w) == (0, 0, 3.0)
        assert (rows[1].lo, rows[1].hi, rows[1].w) == (1, 1, 5.0)

    def test_larger_w_no_new_subpaths_is_noop(self):
        q = TempSQueue()
        q.update(3.0, node(0, 3.0), 0, 1)
        q.update(9.0, node(1, 9.0), 0, 1)
        assert len(q) == 1
        assert q.top.w == 3.0

    def test_middle_merge(self):
        q = TempSQueue()
        q.update(2.0, node(0, 2.0), 0, 0)
        q.update(6.0, node(1, 6.0), 0, 1)
        q.update(8.0, node(2, 8.0), 0, 2)
        q.update(4.0, node(3, 4.0), 0, 3)  # replaces rows with w in {6, 8}
        rows = list(q.rows())
        assert [(r.lo, r.hi, r.w) for r in rows] == [(0, 0, 2.0), (1, 3, 4.0)]

    def test_equal_w_merges(self):
        q = TempSQueue()
        q.update(4.0, node(0, 4.0), 0, 0)
        q.update(4.0, node(1, 4.0), 0, 1)
        assert len(q) == 1
        assert q.top.sol.edge_index == 1

    def test_invariants_maintained(self):
        q = TempSQueue()
        values = [5.0, 2.0, 7.0, 7.0, 1.0, 9.0, 3.0]
        for i, w in enumerate(values):
            q.update(w, node(i, w), 0, i)
            q.check_invariants()


class TestPopCompleted:
    def build(self):
        q = TempSQueue()
        q.update(2.0, node(0, 2.0), 0, 0)
        q.update(6.0, node(1, 6.0), 0, 1)
        q.update(8.0, node(2, 8.0), 0, 2)
        return q

    def test_pop_nothing(self):
        q = self.build()
        assert q.pop_completed(0) is None
        assert len(q) == 3

    def test_pop_whole_row(self):
        q = self.build()
        completed = q.pop_completed(1)
        assert completed.w == 2.0
        assert q.covered_range() == (1, 2)

    def test_pop_trims_straddling_row(self):
        q = TempSQueue()
        q.update(2.0, node(0, 2.0), 0, 4)  # one row covering 0..4
        completed = q.pop_completed(2)
        assert completed.w == 2.0
        assert q.covered_range() == (2, 4)
        assert len(q) == 1

    def test_pop_across_rows(self):
        q = self.build()
        completed = q.pop_completed(2)
        assert completed.w == 6.0  # row covering prime 1 was popped last
        assert q.covered_range() == (2, 2)

    def test_pop_everything(self):
        q = self.build()
        completed = q.pop_completed(3)
        assert completed.w == 8.0
        assert not q

    def test_update_after_drain(self):
        q = self.build()
        q.pop_completed(3)
        q.update(5.0, node(9, 5.0), 3, 4)
        assert q.covered_range() == (3, 4)

    def test_compaction_keeps_contents(self):
        q = TempSQueue()
        # Many strictly increasing rows, then pop most of them one by one.
        for i in range(200):
            q.update(float(i), node(i, float(i)), 0, i)
        for prime in range(1, 150):
            q.pop_completed(prime)
            assert q.covered_range() == (prime, 199)
        q.check_invariants()


class TestSearchStrategies:
    @pytest.mark.parametrize("search", ["binary", "linear"])
    def test_same_results(self, search):
        q = TempSQueue(search=search)
        sequence = [4.0, 7.0, 1.0, 9.0, 9.0, 2.0, 8.0]
        for i, w in enumerate(sequence):
            q.update(w, node(i, w), 0, i)
        rows = [(r.lo, r.hi, r.w) for r in q.rows()]
        # Suffix minima of the sequence bucketed by opening index.
        assert rows[0][2] == 1.0
        q.check_invariants()

    def test_strategies_agree(self):
        seq = [5.0, 3.0, 8.0, 8.0, 2.0, 7.0, 7.0, 1.0, 6.0]
        results = []
        for search in ("binary", "linear"):
            q = TempSQueue(search=search)
            for i, w in enumerate(seq):
                q.update(w, node(i, w), 0, i)
            results.append([(r.lo, r.hi, r.w) for r in q.rows()])
        assert results[0] == results[1]

    def test_counter_traces_length(self):
        counter = OpCounter()
        q = TempSQueue(counter=counter)
        for i, w in enumerate([3.0, 1.0, 4.0]):
            q.update(w, node(i, w), 0, i)
        assert len(counter.traces["temp_s_len"]) == 3
        assert counter.get("search_steps") > 0


class TestInvariantChecker:
    def test_detects_gap(self):
        q = TempSQueue()
        q.update(1.0, node(0, 1.0), 0, 0)
        q.update(2.0, node(1, 2.0), 0, 1)
        row = list(q.rows())[1]
        row.lo, row.hi = 3, 3  # corrupt: leaves a gap after row 0
        with pytest.raises(AssertionError, match="gap"):
            q.check_invariants()

    def test_detects_non_increasing_w(self):
        q = TempSQueue()
        q.update(1.0, node(0, 1.0), 0, 0)
        q.update(2.0, node(1, 2.0), 0, 1)
        list(q.rows())[1].w = 0.5  # corrupt
        with pytest.raises(AssertionError, match="increasing"):
            q.check_invariants()

    def test_detects_equal_w(self):
        # The W column must be STRICTLY increasing: a tie is a violation
        # too, not just an inversion.
        q = TempSQueue()
        q.update(1.0, node(0, 1.0), 0, 0)
        q.update(2.0, node(1, 2.0), 0, 1)
        list(q.rows())[1].w = 1.0  # corrupt: duplicate W
        with pytest.raises(AssertionError, match="increasing"):
            q.check_invariants()
